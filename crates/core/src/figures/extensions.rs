//! Extension experiments beyond the paper's evaluation — the ablations
//! DESIGN.md commits to:
//!
//! 1. stall probability vs accumulation ratio under transient congestion
//!    (quantifying §3's "an accumulation ratio larger than one improves the
//!    resilience to transient network congestion");
//! 2. SACK vs NewReno-only loss recovery (the transport substrate choice);
//! 3. Reno vs CUBIC congestion control (does the application-driven ON-OFF
//!    structure survive a controller swap? — it must, since the paper's
//!    findings are not tied to one controller);
//! 4. higher moments of the aggregate traffic (the §6.1 footnote that the
//!    strategy-independence result extends beyond the variance).

use vstream_analysis::{classify, AnalysisConfig, Cdf, OnOffAnalysis, SessionPhases};
use vstream_app::engine::Engine;
use vstream_app::strategies::{ServerPacedConfig, ServerPacedLogic};
use vstream_app::{CrossTraffic, SessionLogic, Video};
use vstream_model::{FluidSim, FluidStrategy, PopulationModel};
use vstream_net::{DuplexPath, LinkConfig, LossModel, NetworkProfile};
use vstream_sim::{derive_seed, par_indexed, SimDuration, SimRng};
use vstream_tcp::{CcAlgorithm, TcpConfig};

use crate::figures::long_video;
use crate::report::{FigureData, Series, TableData};

/// A server-paced session with a fully custom server TCP configuration
/// (the library strategies fix theirs).
struct CustomPaced {
    inner: ServerPacedLogic,
    server_cfg: TcpConfig,
    client_cfg: TcpConfig,
}

impl SessionLogic for CustomPaced {
    fn on_start(&mut self, eng: &mut Engine) {
        let conn = eng.open_connection(self.client_cfg.clone(), self.server_cfg.clone());
        debug_assert_eq!(conn, 0);
    }
    fn on_established(&mut self, eng: &mut Engine, conn: usize) {
        self.inner.on_established(eng, conn);
    }
    fn on_data_available(&mut self, eng: &mut Engine, conn: usize) {
        self.inner.on_data_available(eng, conn);
    }
    fn on_eof(&mut self, eng: &mut Engine, conn: usize) {
        self.inner.on_eof(eng, conn);
    }
    fn on_app_timer(&mut self, eng: &mut Engine, id: u32) {
        self.inner.on_app_timer(eng, id);
    }
}

/// Extension 1: playback disruption vs accumulation ratio.
///
/// Streams `n` sessions per accumulation ratio over the Home network under
/// bursty competing traffic and reports the *mean stall time per session*.
/// Ratios above one let the player buffer grow between congestion episodes,
/// so each outage is absorbed by accumulated headroom; at k ≤ 1 the buffer
/// never recovers and every episode is felt — quantifying §3's claim that
/// "an accumulation ratio larger than one improves the resilience to
/// transient network congestion".
pub fn ext_stall_vs_accumulation(seed: u64, n: usize) -> FigureData {
    const RATIOS: [f64; 6] = [0.95, 1.0, 1.05, 1.1, 1.25, 1.5];
    // Engine seeds are derived from each session's identity (ratio index,
    // session index), not drawn from a shared RNG, so every (k, i) cell is
    // order-independent and the whole k × n sweep runs as one parallel batch.
    let stalls = par_indexed(RATIOS.len() * n, crate::session::default_jobs(), |j| {
        let (ki, i) = (j / n, j % n);
        let video = Video::new(1, 2_500_000, SimDuration::from_secs(2400));
        let cfg = ServerPacedConfig {
            accumulation: RATIOS[ki],
            // A shallow startup buffer isolates the steady-state
            // resilience effect under study.
            buffer_playback_secs: 5.0,
            ..ServerPacedConfig::default()
        };
        let mut eng = Engine::new(
            NetworkProfile::Home.build_path(), // 20 Mbps downlink
            derive_seed(seed, &[0x57A, ki as u64, i as u64]),
            SimDuration::from_secs(180),
        );
        // Occasional large bursts of competing traffic (mean 1.2 MB
        // every 3 s, exponential sizes): the link is fine on average,
        // but burst clusters starve the stream for seconds at a time —
        // the "transient network congestion" §3 says the accumulation
        // ratio guards against. Headroom (k > 1) both absorbs an
        // outage (deeper accumulated buffer) and refills the buffer
        // faster afterwards (at (k-1)·e).
        eng.set_cross_traffic(CrossTraffic {
            mean_period: SimDuration::from_secs(3),
            mean_burst_bytes: 1_200_000,
        });
        let mut logic = ServerPacedLogic::new(cfg, video);
        eng.run(&mut logic);
        let stall_secs = logic.player.stats().stall_time.as_secs_f64();
        crate::figures::retire_engine(eng);
        stall_secs
    });
    let points: Vec<(f64, f64)> = RATIOS
        .iter()
        .enumerate()
        .map(|(ki, &k)| {
            let total: f64 = stalls[ki * n..(ki + 1) * n].iter().sum();
            (k, total / n as f64)
        })
        .collect();
    FigureData {
        id: "ext-stalls",
        title: "Mean stall time vs accumulation ratio under bursty ~50% cross traffic".into(),
        x_label: "accumulation_ratio",
        y_label: "mean_stall_secs_per_session",
        series: vec![Series::new("Home network, 2.5 Mbps video", points)],
    }
}

/// Extension 2: SACK vs NewReno-only recovery.
///
/// Bulk-transfers 8 MB over a 10 Mbps path at several loss rates, with and
/// without SACK, and reports the completion times. Without SACK, NewReno
/// repairs one hole per round trip, so loss bursts inflate the transfer
/// time dramatically.
pub fn ext_sack_ablation(seed: u64) -> TableData {
    ext_sack_ablation_with_runs(seed, 8)
}

/// [`ext_sack_ablation`] with a configurable number of averaged runs per
/// cell (the Criterion bench uses 1; the `repro` binary averages 8).
pub fn ext_sack_ablation_with_runs(seed: u64, runs: u64) -> TableData {
    let mut rows = Vec::new();
    let runs = runs.max(1);
    // The window must be large (high BDP) for multi-hole windows to occur:
    // SACK's advantage is repairing many holes per round trip.
    let cases: [(&str, LossModel); 3] = [
        ("Bernoulli 0.3%", LossModel::bernoulli(0.003)),
        // ~0.5% average loss arriving in bursts of ~8 packets: the pattern
        // where cumulative-ACK-only recovery pays one round trip per hole.
        ("bursty ~0.5% (GE)", LossModel::gilbert_elliott(0.0008, 0.12, 0.0, 0.9)),
        ("bursty ~1.5% (GE)", LossModel::gilbert_elliott(0.0025, 0.12, 0.0, 0.9)),
    ];
    // Every (loss model, SACK, run) transfer is independent — each is
    // seeded by its run index alone (the SACK pairing intentionally reuses
    // the same seed), so the whole sweep runs as one parallel batch.
    let per_cell = runs as usize;
    let totals = par_indexed(
        cases.len() * 2 * per_cell,
        crate::session::default_jobs(),
        |j| {
            let case = j / (2 * per_cell);
            let sack = (j / per_cell) % 2 == 0;
            let i = (j % per_cell) as u64;
            bulk_transfer_time(
                seed.wrapping_add(i * 7919),
                cases[case].1.clone(),
                sack,
                CcAlgorithm::Reno,
            )
        },
    );
    for (case, (label, _)) in cases.iter().enumerate() {
        let mean = |sack_slot: usize| -> f64 {
            let start = (case * 2 + sack_slot) * per_cell;
            totals[start..start + per_cell].iter().sum::<f64>() / runs as f64
        };
        let (with_sack, without) = (mean(0), mean(1));
        rows.push(vec![
            label.to_string(),
            format!("{with_sack:.2}"),
            format!("{without:.2}"),
            format!("{:.2}x", without / with_sack),
        ]);
    }
    TableData {
        id: "ext-sack",
        title: "SACK ablation: 16 MB bulk transfer time (s), 50 Mbps / 120 ms RTT".into(),
        headers: vec![
            "loss model".into(),
            "with SACK (s)".into(),
            "NewReno only (s)".into(),
            "slowdown".into(),
        ],
        rows,
    }
}

/// Transfer completion time for an 8 MB bulk download.
fn bulk_transfer_time(seed: u64, loss: LossModel, sack: bool, congestion: CcAlgorithm) -> f64 {
    struct Bulk {
        size: u64,
        read: u64,
        done_at: Option<f64>,
        client_cfg: TcpConfig,
        server_cfg: TcpConfig,
    }
    impl SessionLogic for Bulk {
        fn on_start(&mut self, eng: &mut Engine) {
            eng.open_connection(self.client_cfg.clone(), self.server_cfg.clone());
        }
        fn on_established(&mut self, eng: &mut Engine, conn: usize) {
            eng.server_write(conn, self.size);
            eng.server_close(conn);
        }
        fn on_data_available(&mut self, eng: &mut Engine, conn: usize) {
            self.read += eng.client_read(conn, u64::MAX);
            if self.read >= self.size && self.done_at.is_none() {
                self.done_at = Some(eng.now().as_secs_f64());
                eng.stop();
            }
        }
    }
    let down = LinkConfig::new(50_000_000, SimDuration::from_millis(60)).with_loss(loss);
    let up = LinkConfig::new(50_000_000, SimDuration::from_millis(60));
    let mut eng = Engine::new(DuplexPath::new(down, up), seed, SimDuration::from_secs(600));
    let mut logic = Bulk {
        size: 16 << 20,
        read: 0,
        done_at: None,
        client_cfg: TcpConfig::default()
            .with_recv_buffer(8 << 20)
            .with_sack(sack)
            .with_congestion(congestion),
        server_cfg: TcpConfig::default()
            .with_sack(sack)
            .with_congestion(congestion),
    };
    eng.run(&mut logic);
    crate::figures::retire_engine(eng);
    logic.done_at.unwrap_or(600.0)
}

/// Extension 3: Reno vs CUBIC under the Flash streaming strategy.
///
/// The paper's traffic structure is application-driven; swapping the
/// congestion controller must leave the block size, accumulation ratio, and
/// strategy classification unchanged. Returns one row per controller.
pub fn ext_congestion_ablation(seed: u64) -> TableData {
    let cfg = AnalysisConfig::default();
    let controllers = [("Reno", CcAlgorithm::Reno), ("CUBIC", CcAlgorithm::Cubic)];
    // Both controllers intentionally share the root seed (identical network
    // conditions); the two sessions run as a parallel batch.
    let rows = par_indexed(controllers.len(), crate::session::default_jobs(), |i| {
        let (name, algo) = controllers[i];
        let video = long_video(1, 1_000_000);
        let mut eng = Engine::new(
            NetworkProfile::Research.build_path(),
            seed,
            SimDuration::from_secs(180),
        );
        let mut server_cfg = TcpConfig::default()
            .with_recv_buffer(256 * 1024)
            .with_congestion(algo);
        server_cfg.max_cwnd = 1 << 20;
        let mut logic = CustomPaced {
            inner: ServerPacedLogic::new(ServerPacedConfig::default(), video),
            server_cfg,
            client_cfg: TcpConfig::default()
                .with_recv_buffer(4 << 20)
                .with_congestion(algo),
        };
        eng.run(&mut logic);
        let analysis = OnOffAnalysis::from_trace(eng.trace(), &cfg);
        let blocks = analysis.steady_state_block_sizes();
        let median_block = if blocks.is_empty() {
            0.0
        } else {
            Cdf::new(blocks.iter().map(|&b| b as f64).collect()).median()
        };
        let phases = SessionPhases::from_trace(eng.trace(), &cfg);
        let k = phases.accumulation_ratio(1e6).unwrap_or(f64::NAN);
        let strategy = classify(eng.trace(), &cfg);
        crate::figures::retire_engine(eng);
        vec![
            name.to_string(),
            format!("{:.0}", median_block / 1e3),
            format!("{k:.2}"),
            strategy.table_label().to_string(),
        ]
    });
    TableData {
        id: "ext-cc",
        title: "Congestion-control ablation: Flash strategy structure".into(),
        headers: vec![
            "controller".into(),
            "median block (kB)".into(),
            "accumulation k".into(),
            "strategy".into(),
        ],
        rows,
    }
}

/// Extension 4: higher moments of the aggregate traffic.
///
/// §6.1 notes the strategy-independence argument extends to higher moments;
/// this verifies it empirically for the third central moment.
pub fn ext_third_moment(seed: u64, horizon_secs: f64) -> TableData {
    let pop = PopulationModel {
        lambda: 1.0,
        encoding_bps: (0.5e6, 1.5e6),
        duration_secs: (120.0, 360.0),
        bandwidth_bps: (5e6, 15e6),
    };
    let strategies = [
        ("no ON-OFF", FluidStrategy::Bulk),
        ("short ON-OFF", FluidStrategy::short_cycles()),
        ("long ON-OFF", FluidStrategy::long_cycles()),
    ];
    // Each strategy's Monte-Carlo deliberately reuses the root seed (same
    // arrival process under every strategy); the rows run in parallel.
    let rows = par_indexed(strategies.len(), crate::session::default_jobs(), |i| {
        let (name, strategy) = strategies[i];
        let sim = FluidSim::new(pop.clone(), strategy);
        let (mean, var, m3) = sim.moments3(seed, horizon_secs, 0.5);
        let skew = m3 / var.powf(1.5);
        vec![
            name.to_string(),
            format!("{:.1}", mean / 1e6),
            format!("{:.3}", var / 1e12),
            format!("{skew:.3}"),
        ]
    });
    TableData {
        id: "ext-m3",
        title: "Higher moments of the aggregate rate, per strategy".into(),
        headers: vec![
            "strategy".into(),
            "E[R] (Mbps)".into(),
            "V_R (Tb2/s2)".into(),
            "skewness".into(),
        ],
        rows,
    }
}

/// Extension 5: packet-level validation of the §6 aggregate model.
///
/// The fluid Monte-Carlo (`model-agg`) validates Eqs. (3)/(4) under the
/// model's own assumptions. This experiment goes further: it superposes
/// `n_sessions` *packet-level* Flash sessions (each fully downloading a
/// random video, with Poisson-ish start offsets over a `window_secs`
/// horizon — independence is exactly the paper's overprovisioning
/// assumption) and compares the aggregate-rate moments against the closed
/// forms. The variance is reported at several bin widths: binning averages
/// the instantaneous rate, so the measured variance converges to the
/// fluid-model value as the bin shrinks toward the burst timescale.
pub fn ext_aggregate_packet_level(seed: u64, n_sessions: usize, window_secs: f64) -> TableData {
    use vstream_app::strategies::BulkLogic;

    // Session population: bulk downloads (the no-ON-OFF strategy, whose
    // instantaneous rate is the cleanest match to the model's X_n(t) = G).
    //
    // The population parameters come from one shared RNG, so they are
    // sampled serially first (preserving the original draw order exactly);
    // the expensive packet-level runs then execute as a parallel batch.
    let mut rng = SimRng::new(seed ^ 0xA66);
    let params: Vec<(u64, f64, f64, u64)> = (0..n_sessions)
        .map(|_| {
            let e = rng.uniform_range(0.5e6, 1.5e6) as u64;
            let l = rng.uniform_range(60.0, 240.0);
            let offset = rng.uniform_range(0.0, window_secs);
            let engine_seed = rng.uniform_u64(0, u64::MAX);
            (e, l, offset, engine_seed)
        })
        .collect();
    let mut sum_size_bits = 0.0;
    let mut sum_e = 0.0;
    let mut sum_l = 0.0;
    for &(e, l, _, _) in &params {
        let video = Video::new(0, e, SimDuration::from_secs_f64(l));
        sum_size_bits += video.size_bytes() as f64 * 8.0;
        sum_e += e as f64;
        sum_l += l;
    }
    let bin = SimDuration::from_millis(10);
    let offsets_and_series: Vec<(f64, Vec<(f64, f64)>)> =
        par_indexed(n_sessions, crate::session::default_jobs(), |i| {
            let (e, l, offset, engine_seed) = params[i];
            let video = Video::new(0, e, SimDuration::from_secs_f64(l));
            let mut eng = Engine::new(
                NetworkProfile::Research.build_path(),
                engine_seed,
                SimDuration::from_secs_f64(l + 60.0),
            );
            let mut logic = BulkLogic::new(video);
            eng.run(&mut logic);
            let series: Vec<(f64, f64)> = eng
                .trace()
                .throughput_timeline(bin)
                .into_iter()
                .map(|(t, bps)| (t.as_secs_f64(), bps))
                .collect();
            crate::figures::retire_engine(eng);
            (offset, series)
        });

    // Superpose onto a fine grid covering the window plus spill-over.
    let dt = bin.as_secs_f64();
    let total_slots = ((window_secs + 400.0) / dt) as usize;
    let mut grid = vec![0.0f64; total_slots];
    for (offset, series) in &offsets_and_series {
        for &(t, bps) in series {
            let idx = ((offset + t) / dt) as usize;
            if idx < total_slots {
                grid[idx] += bps;
            }
        }
    }
    // Steady-state window: skip one max-session-duration of warmup, stop at
    // the window end.
    let skip = (300.0 / dt) as usize;
    let keep = ((window_secs - 300.0).max(10.0) / dt) as usize;
    let steady = &grid[skip..(skip + keep).min(total_slots)];

    let lambda = n_sessions as f64 / window_secs;
    let mean_cf = lambda * sum_size_bits / n_sessions as f64;
    let mean_e = sum_e / n_sessions as f64;
    let mean_l = sum_l / n_sessions as f64;
    // E[G]: bulk sessions on the Research profile run at about the loss- and
    // queue-limited rate; estimate it from the sessions themselves.
    let mean_g = {
        let g: f64 = offsets_and_series
            .iter()
            .map(|(_, s)| {
                let active: Vec<f64> = s.iter().map(|&(_, b)| b).filter(|&b| b > 0.0).collect();
                if active.is_empty() {
                    0.0
                } else {
                    active.iter().sum::<f64>() / active.len() as f64
                }
            })
            .sum();
        g / n_sessions as f64
    };
    let var_cf = lambda * mean_e * mean_l * mean_g;

    let mean = steady.iter().sum::<f64>() / steady.len().max(1) as f64;
    let mut rows = vec![vec![
        "E[R] (Mbps)".to_string(),
        format!("{:.1}", mean_cf / 1e6),
        format!("{:.1}", mean / 1e6),
    ]];
    // Variance at several averaging scales.
    for (label, factor) in [("V_R @10ms bins", 1usize), ("V_R @100ms bins", 10), ("V_R @1s bins", 100)] {
        let coarse: Vec<f64> = steady
            .chunks(factor)
            .map(|c| c.iter().sum::<f64>() / c.len() as f64)
            .collect();
        let m = coarse.iter().sum::<f64>() / coarse.len() as f64;
        let v = coarse.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / coarse.len() as f64;
        rows.push(vec![
            format!("{label} (Tb2/s2)"),
            format!("{:.3}", var_cf / 1e12),
            format!("{:.3}", v / 1e12),
        ]);
    }
    TableData {
        id: "ext-agg-pkt",
        title: format!(
            "Packet-level aggregate of {n_sessions} bulk sessions vs Eq. (3)/(4) closed forms"
        ),
        headers: vec!["quantity".into(), "closed form".into(), "packet-level".into()],
        rows,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stall_time_falls_with_accumulation() {
        let fig = ext_stall_vs_accumulation(61, 4);
        let pts = &fig.series[0].points;
        assert_eq!(pts.len(), 6);
        // Headroom helps: k = 1.5 suffers materially less stall time than
        // k <= 1.0.
        let low_k = pts[0].1.max(pts[1].1);
        let high_k = pts[5].1;
        assert!(
            high_k < low_k * 0.7,
            "stall time did not fall with k: {pts:?}"
        );
    }

    #[test]
    fn sack_helps_under_bursty_loss() {
        let t = ext_sack_ablation(63);
        for row in &t.rows {
            let slowdown: f64 = row[3].trim_end_matches('x').parse().unwrap();
            assert!(slowdown >= 0.85, "SACK materially slower than NewReno: {row:?}");
        }
        // Under bursty loss the cumulative-ACK-only penalty is visible.
        let bursty: f64 = t.rows[2][3].trim_end_matches('x').parse().unwrap();
        assert!(bursty > 1.1, "no SACK benefit under bursty loss: {bursty}");
    }

    #[test]
    fn traffic_structure_survives_controller_swap() {
        let t = ext_congestion_ablation(65);
        assert_eq!(t.rows.len(), 2);
        for row in &t.rows {
            let block: f64 = row[1].parse().unwrap();
            assert!(
                (55.0..=75.0).contains(&block),
                "{}: median block {block} kB",
                row[0]
            );
            let k: f64 = row[2].parse().unwrap();
            assert!((1.1..=1.4).contains(&k), "{}: k = {k}", row[0]);
            assert_eq!(row[3], "Short");
        }
    }

    #[test]
    fn packet_level_aggregate_mean_matches_closed_form() {
        let t = ext_aggregate_packet_level(71, 30, 900.0);
        let cf: f64 = t.rows[0][1].parse().unwrap();
        let measured: f64 = t.rows[0][2].parse().unwrap();
        let err = (measured - cf).abs() / cf;
        assert!(err < 0.25, "mean {measured} vs closed form {cf}");
        // Variance grows as the averaging bin shrinks (10 ms > 1 s bins).
        let v_fine: f64 = t.rows[1][2].parse().unwrap();
        let v_coarse: f64 = t.rows[3][2].parse().unwrap();
        assert!(v_fine > v_coarse, "binning should smooth the variance");
    }

    #[test]
    fn third_moment_agrees_across_strategies() {
        let t = ext_third_moment(67, 4000.0);
        let skews: Vec<f64> = t.rows.iter().map(|r| r[3].parse().unwrap()).collect();
        let base = skews[0];
        for s in &skews[1..] {
            assert!(
                (s - base).abs() < 0.3,
                "skewness differs across strategies: {skews:?}"
            );
        }
    }
}
