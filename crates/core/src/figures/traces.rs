//! The representative-trace figures: 1, 2, 6(a), 7(a), and 10.

use vstream_net::NetworkProfile;
use vstream_sim::{SimDuration, SimTime};
use vstream_workload::{Client, Container};

use crate::figures::{long_video, CAPTURE};
use crate::query::{query_many, SessionQuery, SessionReply};
use crate::report::{FigureData, Series};
use crate::session::SessionSpec;

/// The queried download series of one session, in `(secs, MB)`.
fn download_mb(reply: &SessionReply) -> Vec<(f64, f64)> {
    reply.answer.download_mb.clone().expect("download queried")
}

/// The queried receive-window series, scaled by `1/div` bytes.
fn window_scaled(reply: &SessionReply, div: f64) -> Vec<(f64, f64)> {
    reply
        .answer
        .window_series
        .as_ref()
        .expect("window queried")
        .iter()
        .map(|&(t, w): &(SimTime, u64)| (t.as_secs_f64(), w as f64 / div))
        .collect()
}

/// Fig. 1: the phases of a video download — buffering phase, then ON-OFF
/// cycles in the steady state. One server-paced (Flash) session.
pub fn fig1_phases(seed: u64) -> FigureData {
    let query = SessionQuery::default().download(SimDuration::from_millis(50));
    let mut outs = query_many(
        &[SessionSpec::new(
            Client::Firefox,
            Container::Flash,
            long_video(1, 1_000_000),
            NetworkProfile::Research,
            seed,
            SimDuration::from_secs(60),
        )],
        &query,
    );
    let out = outs.pop().flatten().expect("valid cell");
    FigureData {
        id: "fig1",
        title: "Phases of video download (server-paced Flash session)".into(),
        x_label: "time_s",
        y_label: "download_mb",
        series: vec![Series::new("Download amount", download_mb(&out))],
    }
}

/// Fig. 2: short ON-OFF cycles. Download amount (a) and the client's
/// advertised receive window (b) for one Flash and one HTML5-on-IE session.
/// The Flash window never empties (server-side pacing); the HTML5 window
/// periodically collapses to zero (client-side pacing).
pub fn fig2_short_onoff(seed: u64) -> (FigureData, FigureData) {
    let window = SimDuration::from_secs(10);
    let query = SessionQuery::default()
        .download(SimDuration::from_millis(20))
        .window(0);
    // Identity-indexed seeds (seed, seed + 1): the two sessions run as one
    // parallel batch.
    let mut outs = query_many(
        &[
            SessionSpec::new(
                Client::InternetExplorer,
                Container::Flash,
                long_video(1, 1_500_000),
                NetworkProfile::Research,
                seed,
                window,
            ),
            SessionSpec::new(
                Client::InternetExplorer,
                Container::Html5,
                long_video(2, 1_500_000),
                NetworkProfile::Research,
                seed.wrapping_add(1),
                window,
            ),
        ],
        &query,
    );
    let html5 = outs.pop().flatten().expect("valid cell");
    let flash = outs.pop().flatten().expect("valid cell");

    let download = FigureData {
        id: "fig2a",
        title: "Short ON-OFF cycles: download amount".into(),
        x_label: "time_s",
        y_label: "download_mb",
        series: vec![
            Series::new("HTML5 (IE)", download_mb(&html5)),
            Series::new("Flash (IE)", download_mb(&flash)),
        ],
    };

    let window_fig = FigureData {
        id: "fig2b",
        title: "Short ON-OFF cycles: TCP receive window".into(),
        x_label: "time_s",
        y_label: "recv_window_kb",
        series: vec![
            Series::new("HTML5 (IE)", window_scaled(&html5, 1e3)),
            Series::new("Flash (IE)", window_scaled(&flash, 1e3)),
        ],
    };
    (download, window_fig)
}

/// Fig. 6(a): long ON-OFF cycles — download amount and receive window for a
/// Chrome HTML5 session. OFF periods last tens of seconds and the window
/// empties between pulls.
pub fn fig6a_long_onoff(seed: u64) -> FigureData {
    let query = SessionQuery::default()
        .download(SimDuration::from_millis(200))
        .window(0);
    let mut outs = query_many(
        &[SessionSpec::new(
            Client::Chrome,
            Container::Html5,
            long_video(1, 1_200_000),
            NetworkProfile::Research,
            seed,
            CAPTURE,
        )],
        &query,
    );
    let out = outs.pop().flatten().expect("valid cell");
    FigureData {
        id: "fig6a",
        title: "Long ON-OFF cycles (Chrome): download amount and receive window".into(),
        x_label: "time_s",
        y_label: "mb",
        series: vec![
            Series::new("Down. Amt.", download_mb(&out)),
            Series::new("Recv. Wnd", window_scaled(&out, 1e6)),
        ],
    }
}

/// Fig. 7(a): the iPad's mixture of strategies — two videos with different
/// encoding rates produce different patterns (many-connection periodic
/// buffering vs short cycles).
pub fn fig7a_ipad_traces(seed: u64) -> FigureData {
    let window = SimDuration::from_secs(50);
    let query = SessionQuery::default().download(SimDuration::from_millis(100));
    let mut outs = query_many(
        &[
            SessionSpec::new(
                Client::Ipad,
                Container::Html5,
                long_video(1, 2_500_000),
                NetworkProfile::Research,
                seed,
                window,
            ),
            SessionSpec::new(
                Client::Ipad,
                Container::Html5,
                long_video(2, 400_000),
                NetworkProfile::Research,
                seed.wrapping_add(1),
                window,
            ),
        ],
        &query,
    );
    let video2 = outs.pop().flatten().expect("valid cell");
    let video1 = outs.pop().flatten().expect("valid cell");
    FigureData {
        id: "fig7a",
        title: "iPad: different streaming patterns for two videos".into(),
        x_label: "time_s",
        y_label: "download_mb",
        series: vec![
            Series::new("Video1 (2.5 Mbps)", download_mb(&video1)),
            Series::new("Video2 (0.4 Mbps)", download_mb(&video2)),
        ],
    }
}

/// Fig. 10: Netflix traces — short ON-OFF cycles for PC and iPad (a), long
/// cycles for Android (b). All on the Academic network, as measured.
pub fn fig10_netflix_traces(seed: u64) -> (FigureData, FigureData) {
    let query = SessionQuery::default().download(SimDuration::from_millis(200));
    let mut outs = query_many(
        &[
            SessionSpec::new(
                Client::Firefox,
                Container::Silverlight,
                long_video(1, 3_000_000),
                NetworkProfile::Academic,
                seed,
                SimDuration::from_secs(100),
            ),
            SessionSpec::new(
                Client::Ipad,
                Container::Silverlight,
                long_video(2, 1_600_000),
                NetworkProfile::Academic,
                seed.wrapping_add(1),
                SimDuration::from_secs(100),
            ),
            SessionSpec::new(
                Client::Android,
                Container::Silverlight,
                long_video(3, 1_600_000),
                NetworkProfile::Academic,
                seed.wrapping_add(2),
                SimDuration::from_secs(150),
            ),
        ],
        &query,
    );
    let android = outs.pop().flatten().expect("valid cell");
    let ipad = outs.pop().flatten().expect("valid cell");
    let pc = outs.pop().flatten().expect("valid cell");

    let short = FigureData {
        id: "fig10a",
        title: "Netflix: short ON-OFF cycles (PC and iPad, Academic)".into(),
        x_label: "time_s",
        y_label: "download_mb",
        series: vec![
            Series::new("PC Acad.", download_mb(&pc)),
            Series::new("iPad Acad.", download_mb(&ipad)),
        ],
    };
    let long = FigureData {
        id: "fig10b",
        title: "Netflix: long ON-OFF cycles (Android, Academic)".into(),
        x_label: "time_s",
        y_label: "download_mb",
        series: vec![Series::new("Android Acad.", download_mb(&android))],
    };
    (short, long)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::run_cell;
    use vstream_analysis::{AnalysisConfig, OnOffAnalysis};

    #[test]
    fn fig1_shows_buffering_then_steps() {
        let fig = fig1_phases(1);
        let s = &fig.series[0];
        assert!(s.points.len() > 10);
        // Monotone non-decreasing cumulative download.
        assert!(s.points.windows(2).all(|w| w[1].1 >= w[0].1));
        // ~40 s of 1 Mbps = 5 MB buffering, plus steady state.
        let total = s.last_y().unwrap();
        assert!(total > 5.0, "downloaded {total:.1} MB");
    }

    #[test]
    fn fig2_flash_window_stays_open_html5_hits_zero() {
        let (_, windows) = fig2_short_onoff(2);
        let html5 = &windows.series[0];
        let flash = &windows.series[1];
        assert!(
            html5.points.iter().any(|&(_, w)| w == 0.0),
            "HTML5 window never reached zero"
        );
        let flash_min = flash.points.iter().map(|&(_, w)| w).fold(f64::MAX, f64::min);
        assert!(flash_min > 0.0, "Flash window emptied: {flash_min}");
    }

    #[test]
    fn fig6a_has_long_off_periods() {
        let fig = fig6a_long_onoff(3);
        // Reconstruct gaps from the download series: at least one OFF gap
        // beyond 20 s.
        let s = &fig.series[0];
        let max_gap = s
            .points
            .windows(2)
            .map(|w| w[1].0 - w[0].0)
            .fold(0.0f64, f64::max);
        assert!(max_gap > 20.0, "longest gap {max_gap:.1} s");
    }

    #[test]
    fn fig10_netflix_shapes() {
        let (short, long) = fig10_netflix_traces(4);
        assert_eq!(short.series.len(), 2);
        // PC downloads much more than iPad in the same window (50 vs 10 MB
        // buffering).
        let pc_total = short.series[0].last_y().unwrap();
        let ipad_total = short.series[1].last_y().unwrap();
        assert!(
            pc_total > 2.0 * ipad_total,
            "PC {pc_total:.0} MB vs iPad {ipad_total:.0} MB"
        );
        assert!(long.series[0].last_y().unwrap() > 30.0);
    }

    #[test]
    fn fig7a_high_rate_video_uses_more_connections() {
        // Not directly visible in the figure data, so re-run the cells.
        let v1 = run_cell(
            Client::Ipad,
            Container::Html5,
            long_video(1, 2_500_000),
            NetworkProfile::Research,
            5,
            SimDuration::from_secs(50),
        )
        .unwrap();
        let a = OnOffAnalysis::from_trace(&v1.trace, &AnalysisConfig::default());
        assert!(v1.connections >= 5);
        assert!(a.cycles.len() >= 3);
    }
}
