//! Uniform containers for reproduced figures and tables, with plain-text and
//! CSV rendering (no plotting dependency: the series are written in a form
//! any plotting tool ingests directly).

use std::fmt::Write as _;

/// One plotted series: a label and `(x, y)` points.
#[derive(Clone, Debug, PartialEq)]
pub struct Series {
    /// Legend label (matches the paper's figure legends where applicable).
    pub label: String,
    /// The data points.
    pub points: Vec<(f64, f64)>,
}

impl Series {
    /// Creates a series.
    pub fn new(label: impl Into<String>, points: Vec<(f64, f64)>) -> Self {
        Series {
            label: label.into(),
            points,
        }
    }

    /// Final y value, if any (e.g. total downloaded).
    pub fn last_y(&self) -> Option<f64> {
        self.points.last().map(|&(_, y)| y)
    }
}

/// A reproduced figure: identifier, axis names, and its series.
#[derive(Clone, Debug)]
pub struct FigureData {
    /// Paper figure id, e.g. `"fig4a"`.
    pub id: &'static str,
    /// Human title.
    pub title: String,
    /// X-axis label.
    pub x_label: &'static str,
    /// Y-axis label.
    pub y_label: &'static str,
    /// The series.
    pub series: Vec<Series>,
}

impl FigureData {
    /// Renders as CSV: a header row `x,label` then one row per point, with
    /// series concatenated and identified by the `series` column.
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "series,{},{}", self.x_label, self.y_label);
        for s in &self.series {
            for (x, y) in &s.points {
                let _ = writeln!(out, "{},{},{}", csv_escape(&s.label), fmt_num(*x), fmt_num(*y));
            }
        }
        out
    }

    /// A short textual summary: per-series point count and y-range.
    pub fn summary(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "[{}] {}", self.id, self.title);
        for s in &self.series {
            let (min, max) = s
                .points
                .iter()
                .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), &(_, y)| {
                    (lo.min(y), hi.max(y))
                });
            let _ = writeln!(
                out,
                "  {}: {} points, {} in [{}, {}]",
                s.label,
                s.points.len(),
                self.y_label,
                fmt_num(min),
                fmt_num(max)
            );
        }
        out
    }
}

/// A reproduced table.
#[derive(Clone, Debug)]
pub struct TableData {
    /// Paper table id, e.g. `"table1"`.
    pub id: &'static str,
    /// Human title.
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Rows of cells.
    pub rows: Vec<Vec<String>>,
}

impl TableData {
    /// Renders as CSV.
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{}",
            self.headers.iter().map(|h| csv_escape(h)).collect::<Vec<_>>().join(",")
        );
        for row in &self.rows {
            let _ = writeln!(
                out,
                "{}",
                row.iter().map(|c| csv_escape(c)).collect::<Vec<_>>().join(",")
            );
        }
        out
    }

    /// Renders as an aligned plain-text table.
    pub fn to_text(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                if i < widths.len() {
                    widths[i] = widths[i].max(cell.len());
                }
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "{}", self.title);
        let render = |cells: &[String], widths: &[usize]| {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:<w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        let _ = writeln!(out, "{}", render(&self.headers, &widths));
        for row in &self.rows {
            let _ = writeln!(out, "{}", render(row, &widths));
        }
        out
    }
}

fn csv_escape(s: &str) -> String {
    if s.contains(',') || s.contains('"') || s.contains('\n') {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

fn fmt_num(x: f64) -> String {
    if x == x.trunc() && x.abs() < 1e15 {
        format!("{}", x as i64)
    } else {
        format!("{x:.6}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_figure() -> FigureData {
        FigureData {
            id: "figX",
            title: "Example".into(),
            x_label: "time_s",
            y_label: "mb",
            series: vec![
                Series::new("a", vec![(0.0, 1.0), (1.0, 2.5)]),
                Series::new("b, c", vec![(0.0, 3.0)]),
            ],
        }
    }

    #[test]
    fn figure_csv_has_header_and_rows() {
        let csv = sample_figure().to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "series,time_s,mb");
        assert_eq!(lines[1], "a,0,1");
        assert_eq!(lines[2], "a,1,2.500000");
        assert_eq!(lines[3], "\"b, c\",0,3");
    }

    #[test]
    fn figure_summary_reports_ranges() {
        let s = sample_figure().summary();
        assert!(s.contains("[figX]"));
        assert!(s.contains("2 points"));
    }

    #[test]
    fn series_last_y() {
        assert_eq!(Series::new("x", vec![(0.0, 5.0)]).last_y(), Some(5.0));
        assert_eq!(Series::new("x", vec![]).last_y(), None);
    }

    #[test]
    fn table_rendering() {
        let t = TableData {
            id: "t",
            title: "T".into(),
            headers: vec!["a".into(), "b".into()],
            rows: vec![vec!["1".into(), "22".into()]],
        };
        assert_eq!(t.to_csv(), "a,b\n1,22\n");
        let text = t.to_text();
        assert!(text.contains("a  b"));
    }

    #[test]
    fn csv_escaping() {
        assert_eq!(csv_escape("plain"), "plain");
        assert_eq!(csv_escape("with,comma"), "\"with,comma\"");
        assert_eq!(csv_escape("with\"quote"), "\"with\"\"quote\"");
    }
}
