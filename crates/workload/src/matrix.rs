//! The application × container matrix of Table 1.
//!
//! Each cell of Table 1 names the streaming strategy the paper measured for
//! one combination of client application and container. This module supplies
//! (a) the ground truth the paper reports ([`table1_expected`]) and (b) a
//! factory that assembles the corresponding simulated session
//! ([`logic_for`]), so the Table 1 reproduction can run every cell and
//! compare the classifier's verdict against the paper's.

use vstream_analysis::Strategy;
use vstream_app::engine::{Engine, SessionLogic};
use vstream_app::strategies::{
    AbrConfig, AbrLogic, BulkLogic, ClientPullConfig, ClientPullLogic, NetflixConfig,
    NetflixLogic, RangeRequestConfig, RangeRequestLogic, ServerPacedConfig, ServerPacedLogic,
};
use vstream_app::{Player, Video};
use vstream_net::NetworkProfile;

/// The streaming service.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Service {
    /// YouTube (Flash, Flash HD, or HTML5 container).
    YouTube,
    /// Netflix (Silverlight on PCs, native applications on mobile).
    Netflix,
}

/// The client application (rows of Table 1).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Client {
    /// Internet Explorer 9.
    InternetExplorer,
    /// Mozilla Firefox 4.0.
    Firefox,
    /// Google Chrome 10.0.
    Chrome,
    /// The native iOS (iPad) application.
    Ipad,
    /// The native Android application.
    Android,
    /// A DASH-style adaptive-bitrate reference player (HTML5 only). Not a
    /// Table 1 row — the paper's 2011 clients pick one rate per session —
    /// but the rate-adaptation behaviour the QoE extension experiments
    /// (`repro ext-qoe`) measure under long-range-dependent cross traffic.
    Dash,
}

impl Client {
    /// All rows of Table 1. [`Client::Dash`] is deliberately excluded: it
    /// is an extension client, and adding it here would change every
    /// Table 1-derived figure.
    pub const ALL: [Client; 5] = [
        Client::InternetExplorer,
        Client::Firefox,
        Client::Chrome,
        Client::Ipad,
        Client::Android,
    ];

    /// The row label in Table 1.
    pub fn label(self) -> &'static str {
        match self {
            Client::InternetExplorer => "Internet Explorer",
            Client::Firefox => "Mozilla Firefox",
            Client::Chrome => "Google Chrome",
            Client::Ipad => "iOS (native)",
            Client::Android => "Android (native)",
            Client::Dash => "DASH (reference)",
        }
    }

    /// True for the native mobile applications.
    pub fn is_mobile(self) -> bool {
        matches!(self, Client::Ipad | Client::Android)
    }
}

/// The video container (columns of Table 1).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Container {
    /// Adobe Flash at the default resolution.
    Flash,
    /// Flash HD (720p).
    FlashHd,
    /// HTML5 (webM).
    Html5,
    /// Microsoft Silverlight (Netflix).
    Silverlight,
}

impl Container {
    /// All columns of Table 1.
    pub const ALL: [Container; 4] = [
        Container::Flash,
        Container::FlashHd,
        Container::Html5,
        Container::Silverlight,
    ];

    /// The column label in Table 1.
    pub fn label(self) -> &'static str {
        match self {
            Container::Flash => "Flash",
            Container::FlashHd => "Flash HD",
            Container::Html5 => "HTML5",
            Container::Silverlight => "Silverlight",
        }
    }

    /// The service this container belongs to.
    pub fn service(self) -> Service {
        match self {
            Container::Silverlight => Service::Netflix,
            _ => Service::YouTube,
        }
    }
}

/// A strategy logic for any Table 1 cell, with uniform access to the player
/// and download counters.
#[derive(Clone)]
pub enum StrategyLogic {
    /// YouTube over Flash (server-paced).
    ServerPaced(ServerPacedLogic),
    /// HTML5 client-pull (IE, Chrome, Android).
    ClientPull(ClientPullLogic),
    /// Bulk transfer (Firefox HTML5, Flash HD).
    Bulk(BulkLogic),
    /// iPad range requests.
    Range(RangeRequestLogic),
    /// Netflix (any device).
    Netflix(NetflixLogic),
    /// DASH-style adaptive bitrate (extension client).
    Abr(AbrLogic),
}

impl StrategyLogic {
    /// The playback model of the wrapped logic.
    pub fn player(&self) -> &Player {
        match self {
            StrategyLogic::ServerPaced(l) => &l.player,
            StrategyLogic::ClientPull(l) => &l.player,
            StrategyLogic::Bulk(l) => &l.player,
            StrategyLogic::Range(l) => &l.player,
            StrategyLogic::Netflix(l) => &l.player,
            StrategyLogic::Abr(l) => &l.player,
        }
    }

    /// Unique bytes the client application has read.
    pub fn read_total(&self) -> u64 {
        match self {
            StrategyLogic::ServerPaced(l) => l.read_total,
            StrategyLogic::ClientPull(l) => l.read_total,
            StrategyLogic::Bulk(l) => l.read_total,
            StrategyLogic::Range(l) => l.read_total,
            StrategyLogic::Netflix(l) => l.read_total,
            StrategyLogic::Abr(l) => l.read_total,
        }
    }

    /// Steady-state blocks the strategy paced out (ON periods). Bulk
    /// transfers have no pacing, so they report zero.
    pub fn blocks(&self) -> u64 {
        match self {
            StrategyLogic::ServerPaced(l) => l.blocks,
            StrategyLogic::ClientPull(l) => l.blocks,
            StrategyLogic::Bulk(_) => 0,
            StrategyLogic::Range(l) => l.blocks,
            StrategyLogic::Netflix(l) => l.blocks,
            StrategyLogic::Abr(l) => l.blocks,
        }
    }

    /// Bitrate switches the strategy performed. Only the adaptive-bitrate
    /// client ever switches; every 2011 Table 1 strategy reports zero.
    pub fn switches(&self) -> u64 {
        match self {
            StrategyLogic::Abr(l) => l.switches,
            _ => 0,
        }
    }

    /// The video being streamed (for Netflix, at the selected rate).
    pub fn video(&self) -> Video {
        match self {
            StrategyLogic::ServerPaced(l) => l.video(),
            StrategyLogic::ClientPull(l) => l.video(),
            StrategyLogic::Bulk(l) => l.video(),
            StrategyLogic::Range(l) => l.video(),
            StrategyLogic::Netflix(l) => l.video(),
            StrategyLogic::Abr(l) => l.video(),
        }
    }
}

impl SessionLogic for StrategyLogic {
    fn on_start(&mut self, eng: &mut Engine) {
        match self {
            StrategyLogic::ServerPaced(l) => l.on_start(eng),
            StrategyLogic::ClientPull(l) => l.on_start(eng),
            StrategyLogic::Bulk(l) => l.on_start(eng),
            StrategyLogic::Range(l) => l.on_start(eng),
            StrategyLogic::Netflix(l) => l.on_start(eng),
            StrategyLogic::Abr(l) => l.on_start(eng),
        }
    }
    fn on_established(&mut self, eng: &mut Engine, conn: usize) {
        match self {
            StrategyLogic::ServerPaced(l) => l.on_established(eng, conn),
            StrategyLogic::ClientPull(l) => l.on_established(eng, conn),
            StrategyLogic::Bulk(l) => l.on_established(eng, conn),
            StrategyLogic::Range(l) => l.on_established(eng, conn),
            StrategyLogic::Netflix(l) => l.on_established(eng, conn),
            StrategyLogic::Abr(l) => l.on_established(eng, conn),
        }
    }
    fn on_data_available(&mut self, eng: &mut Engine, conn: usize) {
        match self {
            StrategyLogic::ServerPaced(l) => l.on_data_available(eng, conn),
            StrategyLogic::ClientPull(l) => l.on_data_available(eng, conn),
            StrategyLogic::Bulk(l) => l.on_data_available(eng, conn),
            StrategyLogic::Range(l) => l.on_data_available(eng, conn),
            StrategyLogic::Netflix(l) => l.on_data_available(eng, conn),
            StrategyLogic::Abr(l) => l.on_data_available(eng, conn),
        }
    }
    fn on_eof(&mut self, eng: &mut Engine, conn: usize) {
        match self {
            StrategyLogic::ServerPaced(l) => l.on_eof(eng, conn),
            StrategyLogic::ClientPull(l) => l.on_eof(eng, conn),
            StrategyLogic::Bulk(l) => l.on_eof(eng, conn),
            StrategyLogic::Range(l) => l.on_eof(eng, conn),
            StrategyLogic::Netflix(l) => l.on_eof(eng, conn),
            StrategyLogic::Abr(l) => l.on_eof(eng, conn),
        }
    }
    fn on_app_timer(&mut self, eng: &mut Engine, id: u32) {
        match self {
            StrategyLogic::ServerPaced(l) => l.on_app_timer(eng, id),
            StrategyLogic::ClientPull(l) => l.on_app_timer(eng, id),
            StrategyLogic::Bulk(l) => l.on_app_timer(eng, id),
            StrategyLogic::Range(l) => l.on_app_timer(eng, id),
            StrategyLogic::Netflix(l) => l.on_app_timer(eng, id),
            StrategyLogic::Abr(l) => l.on_app_timer(eng, id),
        }
    }
}

/// Builds the session logic for a Table 1 cell, or `None` where the cell is
/// not applicable (mobile applications do not play Flash).
pub fn logic_for(client: Client, container: Container, video: Video) -> Option<StrategyLogic> {
    // The DASH extension client exists only over HTML5 segments; giving it
    // any Table 1 plugin container would silently alias a paper cell.
    if client == Client::Dash && container != Container::Html5 {
        return None;
    }
    Some(match container {
        Container::Flash => {
            if client.is_mobile() {
                return None;
            }
            StrategyLogic::ServerPaced(ServerPacedLogic::new(ServerPacedConfig::default(), video))
        }
        Container::FlashHd => {
            if client.is_mobile() {
                return None;
            }
            StrategyLogic::Bulk(BulkLogic::new(video))
        }
        Container::Html5 => match client {
            Client::InternetExplorer => StrategyLogic::ClientPull(ClientPullLogic::new(
                ClientPullConfig::internet_explorer(),
                video,
            )),
            Client::Firefox => StrategyLogic::Bulk(BulkLogic::new(video)),
            Client::Chrome => {
                StrategyLogic::ClientPull(ClientPullLogic::new(ClientPullConfig::chrome(), video))
            }
            Client::Ipad => StrategyLogic::Range(RangeRequestLogic::new(
                RangeRequestConfig::default(),
                video,
            )),
            Client::Android => {
                StrategyLogic::ClientPull(ClientPullLogic::new(ClientPullConfig::android(), video))
            }
            Client::Dash => StrategyLogic::Abr(AbrLogic::new(AbrConfig::default(), video)),
        },
        Container::Silverlight => {
            let cfg = match client {
                Client::Ipad => NetflixConfig::ipad(),
                Client::Android => NetflixConfig::android(),
                _ => NetflixConfig::pc(),
            };
            StrategyLogic::Netflix(NetflixLogic::new(cfg, video.duration))
        }
    })
}

/// The strategy Table 1 of the paper reports for a cell (`None` = not
/// applicable).
pub fn table1_expected(client: Client, container: Container) -> Option<Strategy> {
    match (client, container) {
        // The DASH extension client is not a Table 1 row: the paper has no
        // ground truth for it.
        (Client::Dash, _) => None,
        (c, Container::Flash) if !c.is_mobile() => Some(Strategy::ShortCycles),
        (c, Container::FlashHd) if !c.is_mobile() => Some(Strategy::NoOnOff),
        (_, Container::Flash | Container::FlashHd) => None,
        (Client::InternetExplorer, Container::Html5) => Some(Strategy::ShortCycles),
        (Client::Firefox, Container::Html5) => Some(Strategy::NoOnOff),
        (Client::Chrome, Container::Html5) => Some(Strategy::LongCycles),
        (Client::Ipad, Container::Html5) => Some(Strategy::Mixed),
        (Client::Android, Container::Html5) => Some(Strategy::LongCycles),
        (Client::Android, Container::Silverlight) => Some(Strategy::LongCycles),
        (_, Container::Silverlight) => Some(Strategy::ShortCycles),
    }
}

/// The vantage points a service was measured from (§4.2: Netflix did not
/// stream to France).
pub fn valid_profiles(service: Service) -> &'static [NetworkProfile] {
    match service {
        Service::YouTube => &NetworkProfile::ALL,
        Service::Netflix => &[NetworkProfile::Academic, NetworkProfile::Home],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vstream_sim::SimDuration;

    fn video() -> Video {
        Video::new(1, 1_000_000, SimDuration::from_secs(600))
    }

    #[test]
    fn mobile_clients_have_no_flash() {
        assert!(logic_for(Client::Ipad, Container::Flash, video()).is_none());
        assert!(logic_for(Client::Android, Container::FlashHd, video()).is_none());
        assert!(table1_expected(Client::Ipad, Container::Flash).is_none());
    }

    #[test]
    fn every_applicable_cell_builds() {
        let mut cells = 0;
        for client in Client::ALL {
            for container in Container::ALL {
                let logic = logic_for(client, container, video());
                let expected = table1_expected(client, container);
                assert_eq!(
                    logic.is_some(),
                    expected.is_some(),
                    "{} / {} applicability mismatch",
                    client.label(),
                    container.label()
                );
                if logic.is_some() {
                    cells += 1;
                }
            }
        }
        // 5 clients x 4 containers - 4 mobile Flash cells.
        assert_eq!(cells, 16);
    }

    #[test]
    fn flash_is_browser_independent() {
        // §5.3: for Flash, the strategy does not depend on the application.
        for client in [Client::InternetExplorer, Client::Firefox, Client::Chrome] {
            assert_eq!(
                table1_expected(client, Container::Flash),
                Some(Strategy::ShortCycles)
            );
            assert_eq!(
                table1_expected(client, Container::FlashHd),
                Some(Strategy::NoOnOff)
            );
        }
    }

    #[test]
    fn html5_depends_on_application() {
        use Strategy::*;
        assert_eq!(table1_expected(Client::InternetExplorer, Container::Html5), Some(ShortCycles));
        assert_eq!(table1_expected(Client::Firefox, Container::Html5), Some(NoOnOff));
        assert_eq!(table1_expected(Client::Chrome, Container::Html5), Some(LongCycles));
        assert_eq!(table1_expected(Client::Ipad, Container::Html5), Some(Mixed));
        assert_eq!(table1_expected(Client::Android, Container::Html5), Some(LongCycles));
    }

    #[test]
    fn netflix_browsers_agree_android_differs() {
        use Strategy::*;
        for client in [Client::InternetExplorer, Client::Firefox, Client::Chrome, Client::Ipad] {
            assert_eq!(table1_expected(client, Container::Silverlight), Some(ShortCycles));
        }
        assert_eq!(table1_expected(Client::Android, Container::Silverlight), Some(LongCycles));
    }

    #[test]
    fn netflix_profiles_exclude_france() {
        let profiles = valid_profiles(Service::Netflix);
        assert!(!profiles.contains(&NetworkProfile::Research));
        assert!(!profiles.contains(&NetworkProfile::Residence));
        assert_eq!(valid_profiles(Service::YouTube).len(), 4);
    }

    #[test]
    fn strategy_logic_exposes_uniform_accessors() {
        let logic = logic_for(Client::Firefox, Container::Html5, video()).unwrap();
        assert_eq!(logic.read_total(), 0);
        assert_eq!(logic.video().encoding_bps, 1_000_000);
        assert!(!logic.player().has_started());
        assert_eq!(logic.switches(), 0);
    }

    #[test]
    fn dash_client_is_html5_only_and_outside_table1() {
        assert!(matches!(
            logic_for(Client::Dash, Container::Html5, video()),
            Some(StrategyLogic::Abr(_))
        ));
        for container in [Container::Flash, Container::FlashHd, Container::Silverlight] {
            assert!(logic_for(Client::Dash, container, video()).is_none());
            assert!(table1_expected(Client::Dash, container).is_none());
        }
        assert!(table1_expected(Client::Dash, Container::Html5).is_none());
        // And Table 1 iteration never sees it.
        assert!(!Client::ALL.contains(&Client::Dash));
    }

    #[test]
    fn container_service_mapping() {
        assert_eq!(Container::Silverlight.service(), Service::Netflix);
        assert_eq!(Container::Flash.service(), Service::YouTube);
        assert_eq!(Container::Html5.service(), Service::YouTube);
    }
}
