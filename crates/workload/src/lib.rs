//! Workload synthesis: the paper's six video datasets, the
//! application/container matrix of Table 1, and helpers that assemble a
//! runnable session for any cell of that matrix.
//!
//! The original catalogues (5000 Flash videos, 2000 HD videos, …, sampled
//! from the 2011 YouTube/Netflix services) are gone; what the paper *states*
//! about them — catalogue sizes, encoding-rate ranges, default resolutions —
//! is reproduced here as seeded samplers, so every experiment draws from
//! distributions with the published properties.

pub mod dataset;
pub mod matrix;

pub use dataset::Dataset;
pub use matrix::{logic_for, table1_expected, valid_profiles, Client, Container, Service, StrategyLogic};
