//! The six measurement datasets of §4.1, as seeded samplers.
//!
//! | Dataset  | Videos | Encoding rates     | Notes |
//! |----------|--------|--------------------|-------|
//! | YouFlash | 5000   | 0.2 – 1.5 Mbps     | 240p/360p default, Flash |
//! | YouHD    | 2000   | 0.2 – 4.8 Mbps     | 720p default, Flash HD |
//! | YouHtml  | 3000   | 0.2 – 2.5 Mbps     | 2500 from YouFlash + 500 from YouHD, HTML5 |
//! | YouMob   | —      | 0.2 – 2.7 Mbps     | native mobile applications |
//! | NetPC    | 200    | 0.5 – 3.0 Mbps     | Netflix, Silverlight (multi-rate) |
//! | NetMob   | 50     | subset of NetPC    | Netflix native applications |
//!
//! Durations follow a log-normal: YouTube's 2011 median video length was
//! around four minutes with a heavy tail (Cha et al., cited by the paper);
//! Netflix titles are television episodes and films (20 minutes – 2 hours).

use vstream_app::Video;
use vstream_sim::{derive_seed, SimDuration, SimRng};

/// One of the paper's six datasets.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Dataset {
    /// 5000 randomly selected Flash videos at the default resolution.
    YouFlash,
    /// 2000 HD (720p) videos streamed over the Flash container.
    YouHd,
    /// 3000 videos playable through the HTML5 player.
    YouHtml,
    /// Videos searched through the native mobile applications.
    YouMob,
    /// 200 Netflix watch-instantly titles.
    NetPc,
    /// 50 titles sampled from NetPC for the mobile applications.
    NetMob,
}

impl Dataset {
    /// The catalogue size the paper reports (YouMob's is not stated; the
    /// value matches the scale of the others' mobile subsets).
    pub fn catalogue_size(self) -> usize {
        match self {
            Dataset::YouFlash => 5000,
            Dataset::YouHd => 2000,
            Dataset::YouHtml => 3000,
            Dataset::YouMob => 500,
            Dataset::NetPc => 200,
            Dataset::NetMob => 50,
        }
    }

    /// Encoding-rate range in bits per second, from §4.1.
    pub fn rate_range_bps(self) -> (u64, u64) {
        match self {
            Dataset::YouFlash => (200_000, 1_500_000),
            Dataset::YouHd => (200_000, 4_800_000),
            Dataset::YouHtml => (200_000, 2_500_000),
            Dataset::YouMob => (200_000, 2_700_000),
            Dataset::NetPc => (500_000, 3_000_000),
            Dataset::NetMob => (500_000, 1_600_000),
        }
    }

    /// The figure-legend label.
    pub fn label(self) -> &'static str {
        match self {
            Dataset::YouFlash => "YouFlash",
            Dataset::YouHd => "YouHD",
            Dataset::YouHtml => "YouHtml",
            Dataset::YouMob => "YouMob",
            Dataset::NetPc => "NetPC",
            Dataset::NetMob => "NetMob",
        }
    }

    /// True for the Netflix datasets (different duration model and vantage
    /// points).
    pub fn is_netflix(self) -> bool {
        matches!(self, Dataset::NetPc | Dataset::NetMob)
    }

    /// Samples one video.
    pub fn sample(self, rng: &mut SimRng, id: u64) -> Video {
        let (lo, hi) = self.rate_range_bps();
        // Encoding rates cluster toward the low/default end of the range:
        // most 2011 YouTube videos were 240p/360p. A squared uniform draw
        // biases low while covering the whole published range.
        let u = rng.uniform();
        let rate = lo as f64 + (hi - lo) as f64 * u * u.sqrt();
        let rate = (rate as u64).clamp(lo, hi);

        let duration = if self.is_netflix() {
            // Netflix: episodes (~22/45 min) and films (~100 min).
            let class = rng.uniform();
            let minutes = if class < 0.4 {
                rng.uniform_range(20.0, 25.0)
            } else if class < 0.75 {
                rng.uniform_range(40.0, 50.0)
            } else {
                rng.uniform_range(85.0, 130.0)
            };
            SimDuration::from_secs_f64(minutes * 60.0)
        } else {
            // YouTube: log-normal, median ≈ 4 minutes, clamped to [30 s, 1 h].
            let secs = rng.log_normal((240.0f64).ln(), 0.8);
            SimDuration::from_secs_f64(secs.clamp(30.0, 3600.0))
        };

        Video::new(id, rate, duration)
    }

    /// Samples the `index`-th video of a seeded draw, independent of any
    /// other index.
    ///
    /// The video is a pure function of `(dataset, seed, index)` — not of how
    /// many videos were sampled before it — so callers may materialize any
    /// subset, in any order, on any thread, and `sample_indexed(seed, i)`
    /// always equals `sample_many(seed, n)[i]`.
    pub fn sample_indexed(self, seed: u64, index: u64) -> Video {
        let stream = seed ^ (self.catalogue_size() as u64) << 17;
        let mut rng = SimRng::new(derive_seed(stream, &[index]));
        self.sample(&mut rng, index)
    }

    /// Samples `n` videos deterministically from a seed.
    pub fn sample_many(self, seed: u64, n: usize) -> Vec<Video> {
        (0..n).map(|i| self.sample_indexed(seed, i as u64)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const ALL: [Dataset; 6] = [
        Dataset::YouFlash,
        Dataset::YouHd,
        Dataset::YouHtml,
        Dataset::YouMob,
        Dataset::NetPc,
        Dataset::NetMob,
    ];

    #[test]
    fn catalogue_sizes_match_paper() {
        assert_eq!(Dataset::YouFlash.catalogue_size(), 5000);
        assert_eq!(Dataset::YouHd.catalogue_size(), 2000);
        assert_eq!(Dataset::YouHtml.catalogue_size(), 3000);
        assert_eq!(Dataset::NetPc.catalogue_size(), 200);
        assert_eq!(Dataset::NetMob.catalogue_size(), 50);
    }

    #[test]
    fn samples_respect_rate_ranges() {
        for ds in ALL {
            let (lo, hi) = ds.rate_range_bps();
            for v in ds.sample_many(1, 500) {
                assert!(
                    (lo..=hi).contains(&v.encoding_bps),
                    "{}: rate {} outside [{lo}, {hi}]",
                    ds.label(),
                    v.encoding_bps
                );
            }
        }
    }

    #[test]
    fn sampling_is_deterministic() {
        let a = Dataset::YouFlash.sample_many(7, 100);
        let b = Dataset::YouFlash.sample_many(7, 100);
        assert_eq!(a, b);
        let c = Dataset::YouFlash.sample_many(8, 100);
        assert_ne!(a, c);
    }

    #[test]
    fn youtube_durations_are_minutes_scale() {
        let videos = Dataset::YouFlash.sample_many(3, 2000);
        let mut secs: Vec<f64> = videos.iter().map(|v| v.duration.as_secs_f64()).collect();
        secs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = secs[secs.len() / 2];
        assert!(
            (120.0..=420.0).contains(&median),
            "median YouTube duration = {median:.0} s"
        );
        assert!(secs.iter().all(|&s| (30.0..=3600.0).contains(&s)));
    }

    #[test]
    fn netflix_durations_are_episode_to_film_scale() {
        let videos = Dataset::NetPc.sample_many(3, 1000);
        let secs: Vec<f64> = videos.iter().map(|v| v.duration.as_secs_f64()).collect();
        assert!(secs.iter().all(|&s| (1200.0..=7800.0).contains(&s)));
        // Both episodes and films appear.
        assert!(secs.iter().any(|&s| s < 1800.0));
        assert!(secs.iter().any(|&s| s > 5000.0));
    }

    #[test]
    fn rates_are_biased_low() {
        // Most YouTube videos play at the default (low) resolution.
        let videos = Dataset::YouFlash.sample_many(5, 2000);
        let below_midpoint = videos
            .iter()
            .filter(|v| v.encoding_bps < 850_000)
            .count();
        assert!(
            below_midpoint > videos.len() / 2,
            "only {below_midpoint} of {} below midpoint",
            videos.len()
        );
    }

    #[test]
    fn sample_indexed_matches_sample_many_at_any_index() {
        for ds in ALL {
            let many = ds.sample_many(11, 32);
            // Probe out of order: the indexed draw must not depend on
            // which indices were materialized before it.
            for i in [31usize, 0, 17, 4] {
                assert_eq!(ds.sample_indexed(11, i as u64), many[i], "{}[{i}]", ds.label());
            }
        }
    }

    #[test]
    fn ids_are_sequential() {
        let videos = Dataset::YouHd.sample_many(1, 10);
        for (i, v) in videos.iter().enumerate() {
            assert_eq!(v.id, i as u64);
        }
    }
}
