//! End-to-end benchmark: the full `repro all` figure/table suite at the
//! `repro` binary's default seed and sample size, with and without the
//! cross-figure session cache.
//!
//! The per-figure benchmarks in `figures.rs` deliberately run reduced
//! sample sizes, so this is the only benchmark whose wall clock tracks
//! what a user actually waits for. The two variants measure the session
//! cache's end-to-end effect: `session_cache` brackets each iteration
//! with a fresh `cache::install()`/`uninstall()` (exactly how the binary
//! runs, cold store included), `no_cache` is the `--no-cache` path.
//!
//! One iteration is a whole suite (~6 s), so the group uses two
//! single-iteration samples — this bench is a trajectory recorder, not a
//! microbenchmark. Record runs with e.g.
//!
//! ```text
//! cargo bench -p vstream-bench --bench repro_all -- \
//!     --json BENCH_repro_all.json --label post-session-cache
//! ```

use std::hint::black_box;
use std::time::Duration;

use vstream_bench::harness::Criterion;
use vstream_bench::{criterion_group, criterion_main};

use vstream::figures as f;

/// Every id the `repro` binary runs under `all`, at its default
/// seed/sample clamps, outputs discarded.
fn repro_all_suite(seed: u64, n: usize) {
    black_box(f::fig1_phases(seed));
    black_box(f::fig2_short_onoff(seed));
    black_box(f::fig3a_flash_buffering(seed, n));
    black_box(f::fig3b_html5_buffering(seed, n));
    black_box(f::fig4_flash_steady_state(seed, n));
    black_box(f::fig5_html5_steady_state(seed, n));
    black_box(f::fig6a_long_onoff(seed));
    black_box(f::fig6b_long_blocks(seed, n.min(8)));
    black_box(f::fig7a_ipad_traces(seed));
    black_box(f::fig7b_ipad_block_vs_rate(seed, n));
    black_box(f::fig8_bulk_rates(seed, n));
    black_box(f::fig9_ack_clock(seed));
    black_box(f::fig9_idle_reset_ablation(seed));
    black_box(f::fig10_netflix_traces(seed));
    black_box(f::fig11_netflix_buffering(seed, n.min(6)));
    black_box(f::fig12_netflix_blocks(seed, n.min(4)));
    black_box(f::table1_strategy_matrix(seed));
    black_box(f::table2_strategy_comparison(seed, 60));
    black_box(f::model_aggregate_moments(seed, 4000.0));
    black_box(f::model_interruption_waste(seed));
    black_box(f::model_smoothing());
    black_box(f::ext_stall_vs_accumulation(seed, n.min(8)));
    black_box(f::ext_sack_ablation(seed));
    black_box(f::ext_congestion_ablation(seed));
    black_box(f::ext_third_moment(seed, 4000.0));
    black_box(f::ext_aggregate_packet_level(seed, 40, 1200.0));
}

fn bench_repro_all(c: &mut Criterion) {
    let mut g = c.benchmark_group("repro_all");
    g.sample_size(2)
        .measurement_time(Duration::from_secs(12))
        .warm_up_time(Duration::from_millis(1));

    g.bench_function("session_cache", |b| {
        b.iter(|| {
            vstream::cache::install();
            repro_all_suite(2026, 12);
            vstream::cache::uninstall();
        })
    });
    g.bench_function("no_cache", |b| b.iter(|| repro_all_suite(2026, 12)));
    g.finish();
}

criterion_group!(benches, bench_repro_all);
criterion_main!(benches);
