//! Campaign-mode scaling benchmark: the hybrid fluid/packet capacity
//! planner at 10k, 100k and 1M concurrent viewers.
//!
//! Each iteration is a complete `repro campaign` run minus the I/O: sample
//! the packet shard, reduce it shard-by-shard, cross-validate against the
//! §6 closed forms, and render the capacity tables. The packet shard grows
//! sublinearly with the viewer count (128 → 384 sessions across this
//! group), which is the point of the hybrid design — wall clock should
//! grow far slower than the 100× viewer span. Record runs with e.g.
//!
//! ```text
//! cargo bench -p vstream-bench --bench campaign -- \
//!     --json BENCH_repro_all.json --label campaign-scaling
//! ```

use std::hint::black_box;
use std::time::Duration;

use vstream_bench::harness::Criterion;
use vstream_bench::{criterion_group, criterion_main};

use vstream::campaign::{run_campaign, CampaignOptions, CampaignSpec};

fn run(viewers: u64) {
    let spec = CampaignSpec::for_viewers(viewers);
    let report =
        run_campaign(&spec, &CampaignOptions::default()).expect("uninterrupted campaign");
    assert!(report.validation.pass(), "default campaign must pass its own gate");
    black_box(report);
}

fn bench_campaign(c: &mut Criterion) {
    let mut g = c.benchmark_group("campaign");
    g.sample_size(2)
        .measurement_time(Duration::from_secs(8))
        .warm_up_time(Duration::from_millis(1));
    g.bench_function("viewers_10k", |b| b.iter(|| run(10_000)));
    g.bench_function("viewers_100k", |b| b.iter(|| run(100_000)));
    g.bench_function("viewers_1m", |b| b.iter(|| run(1_000_000)));
    g.finish();
}

criterion_group!(benches, bench_campaign);
criterion_main!(benches);
