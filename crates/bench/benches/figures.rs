//! Benchmarks: one per reproduced table/figure family.
//!
//! Each benchmark regenerates a paper experiment at a reduced sample size
//! (the experiments run whole streaming sessions through the packet-level
//! simulator, so a full-size regeneration belongs in the `repro` binary,
//! not in a statistics-gathering loop). The benchmarks double as
//! regression guards on simulator performance: a TCP or engine slowdown
//! shows up here immediately.

use std::hint::black_box;
use std::time::Duration;

use vstream_bench::harness::Criterion;
use vstream_bench::{criterion_group, criterion_main};

use vstream::figures as f;

fn bench_figures(c: &mut Criterion) {
    let mut g = c.benchmark_group("figures");
    g.sample_size(10).measurement_time(Duration::from_secs(20)).warm_up_time(Duration::from_secs(1));

    g.bench_function("fig1_phases", |b| {
        b.iter(|| black_box(f::fig1_phases(black_box(1))))
    });
    g.bench_function("fig2_short_onoff", |b| {
        b.iter(|| black_box(f::fig2_short_onoff(black_box(2))))
    });
    g.bench_function("fig3a_flash_buffering_n2", |b| {
        b.iter(|| black_box(f::fig3a_flash_buffering(black_box(3), 2)))
    });
    g.bench_function("fig3b_html5_buffering_n2", |b| {
        b.iter(|| black_box(f::fig3b_html5_buffering(black_box(4), 2)))
    });
    g.bench_function("fig4_flash_steady_state_n2", |b| {
        b.iter(|| black_box(f::fig4_flash_steady_state(black_box(5), 2)))
    });
    g.bench_function("fig5_html5_steady_state_n2", |b| {
        b.iter(|| black_box(f::fig5_html5_steady_state(black_box(6), 2)))
    });
    g.bench_function("fig6a_long_onoff", |b| {
        b.iter(|| black_box(f::fig6a_long_onoff(black_box(7))))
    });
    g.bench_function("fig6b_long_blocks_n1", |b| {
        b.iter(|| black_box(f::fig6b_long_blocks(black_box(8), 1)))
    });
    g.bench_function("fig7a_ipad_traces", |b| {
        b.iter(|| black_box(f::fig7a_ipad_traces(black_box(9))))
    });
    g.bench_function("fig7b_ipad_block_vs_rate_n2", |b| {
        b.iter(|| black_box(f::fig7b_ipad_block_vs_rate(black_box(10), 2)))
    });
    g.bench_function("fig8_bulk_rates_n2", |b| {
        b.iter(|| black_box(f::fig8_bulk_rates(black_box(11), 2)))
    });
    g.bench_function("fig9_ack_clock", |b| {
        b.iter(|| black_box(f::fig9_ack_clock(black_box(12))))
    });
    g.bench_function("fig9_idle_reset_ablation", |b| {
        b.iter(|| black_box(f::fig9_idle_reset_ablation(black_box(13))))
    });
    g.bench_function("fig10_netflix_traces", |b| {
        b.iter(|| black_box(f::fig10_netflix_traces(black_box(14))))
    });
    g.bench_function("fig11_netflix_buffering_n1", |b| {
        b.iter(|| black_box(f::fig11_netflix_buffering(black_box(15), 1)))
    });
    g.bench_function("fig12_netflix_blocks_n1", |b| {
        b.iter(|| black_box(f::fig12_netflix_blocks(black_box(16), 1)))
    });
    g.finish();
}

fn bench_tables(c: &mut Criterion) {
    let mut g = c.benchmark_group("tables");
    g.sample_size(10).measurement_time(Duration::from_secs(30)).warm_up_time(Duration::from_secs(1));
    g.bench_function("table1_strategy_matrix", |b| {
        b.iter(|| black_box(f::table1_strategy_matrix(black_box(17))))
    });
    g.bench_function("table2_strategy_comparison", |b| {
        b.iter(|| black_box(f::table2_strategy_comparison(black_box(18), 60)))
    });
    g.finish();
}

fn bench_extensions(c: &mut Criterion) {
    let mut g = c.benchmark_group("extensions");
    g.sample_size(10).measurement_time(Duration::from_secs(25)).warm_up_time(Duration::from_secs(1));
    g.bench_function("ext_stall_vs_accumulation_n1", |b| {
        b.iter(|| black_box(f::ext_stall_vs_accumulation(black_box(21), 1)))
    });
    g.bench_function("ext_sack_ablation_1run", |b| {
        b.iter(|| black_box(f::ext_sack_ablation_with_runs(black_box(22), 1)))
    });
    g.bench_function("ext_congestion_ablation", |b| {
        b.iter(|| black_box(f::ext_congestion_ablation(black_box(23))))
    });
    g.bench_function("ext_third_moment", |b| {
        b.iter(|| black_box(f::ext_third_moment(black_box(24), 1000.0)))
    });
    g.bench_function("ext_aggregate_packet_level_n10", |b| {
        b.iter(|| black_box(f::ext_aggregate_packet_level(black_box(25), 10, 600.0)))
    });
    g.finish();
}

fn bench_model(c: &mut Criterion) {
    let mut g = c.benchmark_group("model");
    g.sample_size(10).measurement_time(Duration::from_secs(15)).warm_up_time(Duration::from_secs(1));
    g.bench_function("model_aggregate_moments", |b| {
        b.iter(|| black_box(f::model_aggregate_moments(black_box(19), 1500.0)))
    });
    g.bench_function("model_interruption_waste", |b| {
        b.iter(|| black_box(f::model_interruption_waste(black_box(20))))
    });
    g.bench_function("model_smoothing", |b| b.iter(|| black_box(f::model_smoothing())));
    g.finish();
}

criterion_group!(benches, bench_figures, bench_tables, bench_extensions, bench_model);
criterion_main!(benches);
