//! Micro-benchmarks of the substrates: raw TCP transfer throughput through
//! the simulator, session-engine event rates, and the analysis pipeline.
//! These guard the performance the figure regenerations depend on.

use std::hint::black_box;
use std::time::Duration;

use vstream::prelude::*;
use vstream_analysis::OnOffAnalysis;
use vstream_bench::harness::Criterion;
use vstream_bench::{criterion_group, criterion_main};

/// One bulk 180 s session: the most packet-dense workload (no pacing).
fn bulk_spec(seed: u64) -> SessionSpec {
    SessionSpec::new(
        Client::Firefox,
        Container::Html5,
        Video::new(1, 2_000_000, SimDuration::from_secs(120)),
        NetworkProfile::Research,
        seed,
        SimDuration::from_secs(180),
    )
}

/// A paced 180 s session: timer-heavy workload.
fn paced_spec(seed: u64) -> SessionSpec {
    SessionSpec::new(
        Client::Firefox,
        Container::Flash,
        Video::new(1, 1_000_000, SimDuration::from_secs(2400)),
        NetworkProfile::Research,
        seed,
        SimDuration::from_secs(180),
    )
}

fn bench_sessions(c: &mut Criterion) {
    let mut g = c.benchmark_group("sessions");
    g.sample_size(10).measurement_time(Duration::from_secs(20)).warm_up_time(Duration::from_secs(1));
    // One scratch per bench, reused across iterations — the same shape as a
    // `run_many` worker running sessions back to back, which is how every
    // figure driver executes these.
    g.bench_function("bulk_120s_video", |b| {
        let spec = bulk_spec(1);
        let mut scratch = SessionScratch::new();
        b.iter(|| {
            black_box(
                black_box(&spec)
                    .run_with_scratch(&mut scratch)
                    .unwrap()
                    .trace
                    .len(),
            )
        });
        scratch.flush_metrics();
    });
    g.bench_function("flash_paced_180s_capture", |b| {
        let spec = paced_spec(2);
        let mut scratch = SessionScratch::new();
        b.iter(|| {
            black_box(
                black_box(&spec)
                    .run_with_scratch(&mut scratch)
                    .unwrap()
                    .trace
                    .len(),
            )
        });
        scratch.flush_metrics();
    });
    g.finish();
}

fn bench_analysis(c: &mut Criterion) {
    // Pre-compute one trace, then benchmark the analysis passes alone.
    let out = run_cell(
        Client::Firefox,
        Container::Flash,
        Video::new(1, 1_000_000, SimDuration::from_secs(2400)),
        NetworkProfile::Research,
        3,
        SimDuration::from_secs(180),
    )
    .unwrap();
    let trace = out.trace;
    let cfg = AnalysisConfig::default();

    let mut g = c.benchmark_group("analysis");
    g.sample_size(30);
    g.bench_function("onoff_detection", |b| {
        b.iter(|| black_box(OnOffAnalysis::from_trace(&trace, &cfg)))
    });
    g.bench_function("phase_decomposition", |b| {
        b.iter(|| black_box(SessionPhases::from_trace(&trace, &cfg)))
    });
    g.bench_function("classification", |b| {
        b.iter(|| black_box(classify(&trace, &cfg)))
    });
    g.bench_function("download_series", |b| {
        b.iter(|| black_box(trace.download_series().len()))
    });
    g.bench_function("throughput_timeline", |b| {
        b.iter(|| black_box(trace.throughput_timeline(SimDuration::from_millis(100)).len()))
    });
    g.bench_function("total_downloaded", |b| {
        b.iter(|| black_box(trace.total_downloaded()))
    });
    g.finish();
}

/// Pack/unpack of the retained-trace format the session cache stores: the
/// same paced capture the analysis benches scan, through a full
/// compress/decompress cycle. The bytes-per-record line printed after the
/// group is the figure DESIGN.md quotes for the packed format.
fn bench_pack(c: &mut Criterion) {
    use vstream_capture::PackedTrace;
    let out = run_cell(
        Client::Firefox,
        Container::Flash,
        Video::new(1, 1_000_000, SimDuration::from_secs(2400)),
        NetworkProfile::Research,
        3,
        SimDuration::from_secs(180),
    )
    .unwrap();
    let trace = out.trace;
    let packed = PackedTrace::pack(&trace);

    let mut g = c.benchmark_group("pack");
    g.sample_size(20);
    g.bench_function("pack", |b| {
        b.iter(|| black_box(PackedTrace::pack(black_box(&trace)).packed_bytes()))
    });
    g.bench_function("unpack", |b| {
        b.iter(|| black_box(black_box(&packed).unpack().len()))
    });
    g.finish();
    println!(
        "pack/bytes_per_record: {:.3} ({} bytes / {} records)",
        packed.packed_bytes() as f64 / trace.len().max(1) as f64,
        packed.packed_bytes(),
        trace.len()
    );
}

/// Batch throughput of the parallel session executor: the same 8-session
/// fan-out serially and across all cores. The jobs-N row should beat jobs-1
/// by roughly the core count (the acceptance floor is 2x at `--jobs 4`),
/// while the per-worker sessions/s reported after the group isolates
/// intra-session gains (scratch reuse, queue backend) from parallelism.
fn bench_sessions_per_sec(c: &mut Criterion) {
    const SESSIONS: u64 = 8;
    let specs: Vec<SessionSpec> = (0..SESSIONS)
        .map(|i| {
            SessionSpec::new(
                Client::Firefox,
                Container::Flash,
                Video::new(i, 1_000_000, SimDuration::from_secs(2400)),
                NetworkProfile::Research,
                0x5E55 + i,
                SimDuration::from_secs(180),
            )
        })
        .collect();
    let all = vstream::default_jobs();
    let mut cases: Vec<(String, usize)> = vec![("run_many_8_sessions_jobs1".to_string(), 1)];
    if all > 1 {
        cases.push((format!("run_many_8_sessions_jobs{all}"), all));
    }
    {
        let mut g = c.benchmark_group("parallel");
        g.sample_size(10).measurement_time(Duration::from_secs(30)).warm_up_time(Duration::from_secs(2));
        for (name, jobs) in &cases {
            let jobs = *jobs;
            g.bench_function(name, |b| {
                b.iter(|| black_box(run_many_jobs(black_box(&specs), jobs)))
            });
        }
        g.finish();
    }
    // Throughput report: sessions/s per worker is the number scratch-reuse
    // and queue-backend work moves; the total is what parallelism moves.
    for (name, jobs) in &cases {
        let full = format!("parallel/{name}");
        if let Some(r) = c.results().iter().find(|r| r.name == full) {
            let total = SESSIONS as f64 / (r.median_ns / 1e9);
            println!(
                "{full:<45} thrpt: {total:.2} sessions/s across {jobs} worker(s) \
                 = {:.2} sessions/s/worker",
                total / *jobs as f64
            );
        }
    }
}

/// The streaming query path against the batch path, over the same paced
/// 8-session fan-out as the `parallel` group and the fold set the
/// steady-state figures use (ON/OFF + phases). Both modes produce identical
/// replies; the rows measure what trace-free execution costs (or saves) in
/// wall clock. The peak-memory lines printed after the group are the
/// `peak_trace_bytes` / `peak_flowstate_bytes` comparison DESIGN.md quotes.
fn bench_streaming_query(c: &mut Criterion) {
    use vstream::{query_many_jobs, set_streaming, SessionQuery};
    use vstream_obs::{collector, Gauge};

    const SESSIONS: u64 = 8;
    let specs: Vec<SessionSpec> = (0..SESSIONS)
        .map(|i| {
            SessionSpec::new(
                Client::Firefox,
                Container::Flash,
                Video::new(i, 1_000_000, SimDuration::from_secs(2400)),
                NetworkProfile::Research,
                0x5E55 + i,
                SimDuration::from_secs(180),
            )
        })
        .collect();
    let query = SessionQuery::default().onoff().phases();
    let jobs = vstream::default_jobs();
    {
        let mut g = c.benchmark_group("streaming");
        g.sample_size(10).measurement_time(Duration::from_secs(20)).warm_up_time(Duration::from_secs(1));
        g.bench_function("query_8_sessions_batch", |b| {
            set_streaming(false);
            b.iter(|| black_box(query_many_jobs(black_box(&specs), jobs, &query)))
        });
        g.bench_function("query_8_sessions_streaming", |b| {
            set_streaming(true);
            b.iter(|| black_box(query_many_jobs(black_box(&specs), jobs, &query)));
            set_streaming(false);
        });
        g.finish();
    }
    // Peak-memory report: one metered pass per mode. `wall = true` keeps the
    // execution-dependent gauges the byte-comparable ledgers zero out.
    for streaming in [false, true] {
        collector::install(true);
        set_streaming(streaming);
        black_box(query_many_jobs(&specs, jobs, &query));
        set_streaming(false);
        let ledger = collector::take().expect("collector installed");
        println!(
            "streaming/peak_bytes[{}]: trace={} flowstate={}",
            if streaming { "streaming" } else { "batch" },
            ledger.totals.gauge(Gauge::PeakTraceBytes),
            ledger.totals.gauge(Gauge::PeakFlowstateBytes),
        );
    }
}

/// Flight-recorder overhead on the paced 8-session fan-out (the same specs
/// as the `parallel` group). The `off` row prices the disabled switch — one
/// relaxed atomic load per emission site — and must sit within noise of the
/// pr7-post `parallel/run_many_8_sessions_jobs1` numbers. The `on` row
/// prices full ring recording: every cwnd sample, queue event, and player
/// transition lands in the per-session ring. Dumps are anomaly-only and
/// these healthy sessions trip no predicate, so no file I/O pollutes the
/// measurement.
fn bench_tracing(c: &mut Criterion) {
    use vstream::flight;
    use vstream_obs::trace;

    const SESSIONS: u64 = 8;
    let specs: Vec<SessionSpec> = (0..SESSIONS)
        .map(|i| {
            SessionSpec::new(
                Client::Firefox,
                Container::Flash,
                Video::new(i, 1_000_000, SimDuration::from_secs(2400)),
                NetworkProfile::Research,
                0x5E55 + i,
                SimDuration::from_secs(180),
            )
        })
        .collect();
    let mut g = c.benchmark_group("tracing");
    g.sample_size(10).measurement_time(Duration::from_secs(30)).warm_up_time(Duration::from_secs(2));
    g.bench_function("run_many_8_sessions_trace_off", |b| {
        trace::set_enabled(false);
        b.iter(|| black_box(run_many_jobs(black_box(&specs), 1)))
    });
    g.bench_function("run_many_8_sessions_trace_on", |b| {
        flight::install(flight::TraceConfig {
            dir: std::env::temp_dir().join("vstream-bench-traces"),
            anomalies_only: true,
            ring_cap: flight::DEFAULT_RING,
        })
        .expect("create temp trace dir");
        b.iter(|| black_box(run_many_jobs(black_box(&specs), 1)));
        flight::uninstall();
    });
    g.finish();
}

/// The DASH adaptation loop, clean and under LRD cross-traffic. The clean
/// row prices the per-segment connection churn (one connection per 4 s
/// segment vs one long-lived connection for the Table 1 clients); the
/// loaded row adds the superposed on/off aggregate's timer events — the
/// densest event mix the ext-qoe sweep runs, so a regression here is a
/// regression in `repro ext-qoe` wall clock.
fn bench_abr(c: &mut Criterion) {
    let dash_spec = |seed: u64, cross: Option<LrdCrossConfig>| {
        let spec = SessionSpec::new(
            Client::Dash,
            Container::Html5,
            Video::new(1, 1_000_000, SimDuration::from_secs(2400)),
            NetworkProfile::Home,
            seed,
            SimDuration::from_secs(180),
        )
        .shared();
        match cross {
            Some(c) => spec.with_lrd_cross(c),
            None => spec,
        }
    };
    let down = NetworkProfile::Home.down_bps();

    let mut g = c.benchmark_group("abr");
    g.sample_size(10).measurement_time(Duration::from_secs(20)).warm_up_time(Duration::from_secs(1));
    g.bench_function("dash_180s_clean", |b| {
        let spec = dash_spec(0xD5A1, None);
        let mut scratch = SessionScratch::new();
        b.iter(|| {
            black_box(
                black_box(&spec)
                    .run_with_scratch(&mut scratch)
                    .unwrap()
                    .trace
                    .len(),
            )
        });
        scratch.flush_metrics();
    });
    g.bench_function("dash_180s_lrd_load_700", |b| {
        let spec = dash_spec(0xD5A2, Some(LrdCrossConfig::for_load(down, 700)));
        let mut scratch = SessionScratch::new();
        b.iter(|| {
            black_box(
                black_box(&spec)
                    .run_with_scratch(&mut scratch)
                    .unwrap()
                    .trace
                    .len(),
            )
        });
        scratch.flush_metrics();
    });
    g.finish();
}

fn bench_fluid_model(c: &mut Criterion) {
    use vstream_model::{FluidSim, FluidStrategy, PopulationModel};
    let pop = PopulationModel {
        lambda: 2.0,
        encoding_bps: (0.5e6, 1.5e6),
        duration_secs: (120.0, 360.0),
        bandwidth_bps: (5e6, 15e6),
    };
    let mut g = c.benchmark_group("fluid_model");
    g.sample_size(10);
    g.bench_function("superposition_1000s", |b| {
        let sim = FluidSim::new(pop.clone(), FluidStrategy::short_cycles());
        b.iter(|| black_box(sim.moments(black_box(4), 1000.0, 0.5)))
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_sessions,
    bench_analysis,
    bench_pack,
    bench_sessions_per_sec,
    bench_streaming_query,
    bench_tracing,
    bench_abr,
    bench_fluid_model
);
criterion_main!(benches);
