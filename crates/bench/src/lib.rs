//! A dependency-free benchmark harness with a Criterion-shaped API.
//!
//! The benches under `benches/` need exactly four things: benchmark groups,
//! per-group sample/time knobs, `bench_function` with a `Bencher::iter`
//! closure, and the `criterion_group!`/`criterion_main!` entry points. This
//! module provides that subset over `std::time::Instant`, so the benchmarks
//! build offline and keep working as regression guards.
//!
//! Each sample runs a fixed number of iterations (calibrated during warm-up
//! so one sample lasts roughly `measurement_time / sample_size`); the report
//! shows the min / median / max per-iteration time across samples. Passing
//! a substring argument (`cargo bench -- fig9`) filters benchmarks by name;
//! `--quick` (or `BENCH_QUICK=1`) caps warm-up and measurement at a second
//! for smoke runs; `--quiet` (or `BENCH_QUIET=1`) drops the live
//! per-benchmark lines, leaving only the end-of-run summary table.
//!
//! ## Recorded trajectories
//!
//! Perf work is only real if it is measured against a recorded baseline, so
//! the harness can append each run to a JSON ledger:
//!
//! ```text
//! cargo bench -p vstream-bench --bench substrates -- \
//!     --json BENCH_substrates.json --label post-timing-wheel
//! ```
//!
//! (or `BENCH_JSON=path BENCH_LABEL=name`). The file holds an array of run
//! objects, one per invocation, each with the host's core count and every
//! benchmark's ns/iter — successive PRs append to the same ledger, giving a
//! reviewable perf trajectory instead of unverifiable claims.

pub mod harness {
    use std::time::{Duration, Instant};

    /// One benchmark's measured outcome, in nanoseconds per iteration.
    #[derive(Clone, Debug)]
    pub struct BenchResult {
        /// `group/id` name.
        pub name: String,
        /// Fastest sample.
        pub min_ns: f64,
        /// Median sample — the headline number.
        pub median_ns: f64,
        /// Slowest sample.
        pub max_ns: f64,
        /// Samples taken.
        pub samples: usize,
        /// Iterations per sample.
        pub iters: u64,
    }

    /// Runs one benchmark's routine: `iter` is timed over a preset number
    /// of iterations per sample.
    pub struct Bencher {
        iters: u64,
        elapsed: Duration,
    }

    impl Bencher {
        /// Times `routine` over this sample's iterations.
        pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
            let start = Instant::now();
            for _ in 0..self.iters {
                std::hint::black_box(routine());
            }
            self.elapsed = start.elapsed();
        }
    }

    /// Top-level driver: parses the CLI filter once, hands out groups, and
    /// accumulates results for the JSON ledger.
    pub struct Criterion {
        filter: Option<String>,
        quick: bool,
        quiet: bool,
        json_path: Option<String>,
        label: String,
        results: Vec<BenchResult>,
    }

    impl Default for Criterion {
        fn default() -> Self {
            let mut filter = None;
            let mut quick = std::env::var_os("BENCH_QUICK").is_some();
            let mut quiet = std::env::var_os("BENCH_QUIET").is_some();
            let mut json_path = std::env::var("BENCH_JSON").ok();
            let mut label = std::env::var("BENCH_LABEL").unwrap_or_default();
            let mut args = std::env::args().skip(1);
            while let Some(arg) = args.next() {
                match arg.as_str() {
                    // Flags cargo-bench forwards that carry no meaning here.
                    "--bench" | "--nocapture" => {}
                    "--quick" => quick = true,
                    "--quiet" => quiet = true,
                    "--json" => json_path = args.next(),
                    "--label" => label = args.next().unwrap_or_default(),
                    s if s.starts_with('-') => {}
                    s => filter = Some(s.to_string()),
                }
            }
            if label.is_empty() {
                label = "run".to_string();
            }
            // A JSON ledger request also meters the simulation itself, so
            // the run object can embed the telemetry totals next to the
            // timings it explains.
            if json_path.is_some() {
                vstream_obs::collector::install(vstream_obs::collector::wall_from_env());
            }
            Criterion {
                filter,
                quick,
                quiet,
                json_path,
                label,
                results: Vec::new(),
            }
        }
    }

    impl Criterion {
        /// Starts a named benchmark group.
        pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
            BenchmarkGroup {
                name: name.to_string(),
                sample_size: 10,
                measurement_time: Duration::from_secs(5),
                warm_up_time: Duration::from_secs(3),
                parent: self,
            }
        }

        /// Every result measured so far, in execution order.
        pub fn results(&self) -> &[BenchResult] {
            &self.results
        }

        /// Appends this run's results to the JSON ledger, if one was
        /// requested via `--json` / `BENCH_JSON`, and prints the summary
        /// table. Called by `criterion_main!` after all groups have run.
        pub fn finalize(&self) {
            if self.results.is_empty() {
                let _ = vstream_obs::collector::take();
                return;
            }
            println!("\n{}", self.summary_table());
            let metrics = vstream_obs::collector::take();
            let Some(path) = &self.json_path else { return };
            let run = self.run_json(metrics.as_ref());
            let merged = match std::fs::read_to_string(path) {
                Ok(existing) => append_run(&existing, &run),
                Err(_) => format!("[\n{run}\n]\n"),
            };
            std::fs::write(path, merged).expect("write bench json ledger");
            println!("wrote {} ({} benchmarks, label {:?})", path, self.results.len(), self.label);
        }

        /// All results as one aligned table — the same formatter the repro
        /// binary's `--metrics-summary` uses, so bench output and ledger
        /// summaries read alike.
        fn summary_table(&self) -> String {
            let rows: Vec<Vec<String>> = self
                .results
                .iter()
                .map(|r| {
                    vec![
                        r.name.clone(),
                        fmt_time(r.median_ns / 1e9),
                        fmt_time(r.min_ns / 1e9),
                        fmt_time(r.max_ns / 1e9),
                        r.samples.to_string(),
                        r.iters.to_string(),
                    ]
                })
                .collect();
            vstream_obs::table::render(
                &["benchmark", "median", "min", "max", "samples", "iters"],
                &rows,
            )
        }

        fn run_json(&self, metrics: Option<&vstream_obs::Ledger>) -> String {
            let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
            let mut s = String::new();
            s.push_str("  {\n");
            s.push_str(&format!("    \"label\": {},\n", json_str(&self.label)));
            s.push_str(&format!("    \"host_cores\": {cores},\n"));
            s.push_str(&format!("    \"quick\": {},\n", self.quick));
            s.push_str("    \"benchmarks\": [\n");
            for (i, r) in self.results.iter().enumerate() {
                let sep = if i + 1 == self.results.len() { "" } else { "," };
                s.push_str(&format!(
                    "      {{\"name\": {}, \"ns_per_iter\": {:.1}, \"min_ns\": {:.1}, \
                     \"max_ns\": {:.1}, \"samples\": {}, \"iters_per_sample\": {}}}{sep}\n",
                    json_str(&r.name),
                    r.median_ns,
                    r.min_ns,
                    r.max_ns,
                    r.samples,
                    r.iters,
                ));
            }
            s.push_str("    ]");
            if let Some(ledger) = metrics {
                let json = ledger.to_json(&vstream::obs::PROFILE_NAMES);
                s.push_str(&format!(",\n    \"metrics\": {}", json.trim_end()));
            }
            s.push_str("\n  }");
            s
        }
    }

    /// Splices a new run object into an existing JSON array (text-level: the
    /// ledger is always produced by this module, so the shape is known).
    fn append_run(existing: &str, run: &str) -> String {
        let trimmed = existing.trim_end();
        match trimmed.strip_suffix(']') {
            Some(head) if head.trim_end().ends_with('[') => {
                // Empty array.
                format!("{}\n{run}\n]\n", head.trim_end())
            }
            Some(head) => format!("{},\n{run}\n]\n", head.trim_end()),
            None => format!("[\n{run}\n]\n"), // unrecognized: start fresh
        }
    }

    fn json_str(s: &str) -> String {
        let mut out = String::with_capacity(s.len() + 2);
        out.push('"');
        for c in s.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                c => out.push(c),
            }
        }
        out.push('"');
        out
    }

    /// A group of related benchmarks sharing sampling parameters.
    pub struct BenchmarkGroup<'a> {
        parent: &'a mut Criterion,
        name: String,
        sample_size: usize,
        measurement_time: Duration,
        warm_up_time: Duration,
    }

    impl BenchmarkGroup<'_> {
        pub fn sample_size(&mut self, n: usize) -> &mut Self {
            self.sample_size = n.max(2);
            self
        }

        pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
            self.measurement_time = d;
            self
        }

        pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
            self.warm_up_time = d;
            self
        }

        /// Runs one benchmark unless it is filtered out.
        pub fn bench_function<F: FnMut(&mut Bencher)>(
            &mut self,
            id: &str,
            mut f: F,
        ) -> &mut Self {
            let full = format!("{}/{id}", self.name);
            if let Some(filter) = &self.parent.filter {
                if !full.contains(filter.as_str()) {
                    return self;
                }
            }
            let (warm_up, measurement) = if self.parent.quick {
                (Duration::from_millis(200), Duration::from_secs(1))
            } else {
                (self.warm_up_time, self.measurement_time)
            };

            // Warm up and calibrate: run single-iteration samples until the
            // warm-up window closes, tracking the mean iteration time.
            let warm_start = Instant::now();
            let mut warm_iters = 0u64;
            while warm_start.elapsed() < warm_up || warm_iters == 0 {
                let mut b = Bencher { iters: 1, elapsed: Duration::ZERO };
                f(&mut b);
                warm_iters += 1;
            }
            let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters as f64;
            let per_sample = measurement.as_secs_f64() / self.sample_size as f64;
            let iters = ((per_sample / per_iter.max(1e-9)) as u64).max(1);

            let mut samples: Vec<f64> = (0..self.sample_size)
                .map(|_| {
                    let mut b = Bencher { iters, elapsed: Duration::ZERO };
                    f(&mut b);
                    b.elapsed.as_secs_f64() / iters as f64
                })
                .collect();
            samples.sort_by(|a, b| a.partial_cmp(b).expect("finite sample"));
            let median = samples[samples.len() / 2];
            // `--quiet` keeps only the end-of-run summary table and ledger
            // notice; the live per-benchmark line is progress feedback.
            if !self.parent.quiet {
                println!(
                    "{full:<45} time: [{} {} {}]  ({} samples x {iters} iters)",
                    fmt_time(samples[0]),
                    fmt_time(median),
                    fmt_time(*samples.last().expect("non-empty")),
                    samples.len(),
                );
            }
            self.parent.results.push(BenchResult {
                name: full,
                min_ns: samples[0] * 1e9,
                median_ns: median * 1e9,
                max_ns: samples.last().expect("non-empty") * 1e9,
                samples: samples.len(),
                iters,
            });
            self
        }

        pub fn finish(&mut self) {}
    }

    fn fmt_time(secs: f64) -> String {
        if secs >= 1.0 {
            format!("{secs:.3} s")
        } else if secs >= 1e-3 {
            format!("{:.3} ms", secs * 1e3)
        } else if secs >= 1e-6 {
            format!("{:.3} us", secs * 1e6)
        } else {
            format!("{:.1} ns", secs * 1e9)
        }
    }

    /// Criterion-compatible entry-point macros: each group function takes
    /// `&mut Criterion`; `criterion_main!` builds the `main` and flushes the
    /// JSON ledger once every group has run.
    #[macro_export]
    macro_rules! criterion_group {
        ($name:ident, $($target:path),+ $(,)?) => {
            fn $name(c: &mut $crate::harness::Criterion) {
                $($target(c);)+
            }
        };
    }

    #[macro_export]
    macro_rules! criterion_main {
        ($($group:path),+ $(,)?) => {
            fn main() {
                let mut c = $crate::harness::Criterion::default();
                $($group(&mut c);)+
                c.finalize();
            }
        };
    }
}

#[cfg(test)]
mod tests {
    use super::harness::Criterion;

    #[test]
    fn harness_runs_a_trivial_benchmark() {
        std::env::set_var("BENCH_QUICK", "1");
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("smoke");
        let mut runs = 0u64;
        g.sample_size(2).bench_function("noop", |b| {
            b.iter(|| {
                runs += 1;
                runs
            })
        });
        g.finish();
        assert!(runs > 0, "benchmark closure never ran");
        assert_eq!(c.results().len(), 1);
        assert_eq!(c.results()[0].name, "smoke/noop");
        assert!(c.results()[0].median_ns >= 0.0);
    }
}
