//! A dependency-free benchmark harness with a Criterion-shaped API.
//!
//! The benches under `benches/` need exactly four things: benchmark groups,
//! per-group sample/time knobs, `bench_function` with a `Bencher::iter`
//! closure, and the `criterion_group!`/`criterion_main!` entry points. This
//! module provides that subset over `std::time::Instant`, so the benchmarks
//! build offline and keep working as regression guards.
//!
//! Each sample runs a fixed number of iterations (calibrated during warm-up
//! so one sample lasts roughly `measurement_time / sample_size`); the report
//! shows the min / median / max per-iteration time across samples. Passing
//! a substring argument (`cargo bench -- fig9`) filters benchmarks by name;
//! `--quick` (or `BENCH_QUICK=1`) caps warm-up and measurement at a second
//! for smoke runs.

pub mod harness {
    use std::time::{Duration, Instant};

    /// Runs one benchmark's routine: `iter` is timed over a preset number
    /// of iterations per sample.
    pub struct Bencher {
        iters: u64,
        elapsed: Duration,
    }

    impl Bencher {
        /// Times `routine` over this sample's iterations.
        pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
            let start = Instant::now();
            for _ in 0..self.iters {
                std::hint::black_box(routine());
            }
            self.elapsed = start.elapsed();
        }
    }

    /// Top-level driver: parses the CLI filter once, hands out groups.
    pub struct Criterion {
        filter: Option<String>,
        quick: bool,
    }

    impl Default for Criterion {
        fn default() -> Self {
            let mut filter = None;
            let mut quick = std::env::var_os("BENCH_QUICK").is_some();
            for arg in std::env::args().skip(1) {
                match arg.as_str() {
                    // Flags cargo-bench forwards that carry no meaning here.
                    "--bench" | "--nocapture" => {}
                    "--quick" => quick = true,
                    s if s.starts_with('-') => {}
                    s => filter = Some(s.to_string()),
                }
            }
            Criterion { filter, quick }
        }
    }

    impl Criterion {
        /// Starts a named benchmark group.
        pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
            BenchmarkGroup {
                parent: self,
                name: name.to_string(),
                sample_size: 10,
                measurement_time: Duration::from_secs(5),
                warm_up_time: Duration::from_secs(3),
            }
        }
    }

    /// A group of related benchmarks sharing sampling parameters.
    pub struct BenchmarkGroup<'a> {
        parent: &'a Criterion,
        name: String,
        sample_size: usize,
        measurement_time: Duration,
        warm_up_time: Duration,
    }

    impl BenchmarkGroup<'_> {
        pub fn sample_size(&mut self, n: usize) -> &mut Self {
            self.sample_size = n.max(2);
            self
        }

        pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
            self.measurement_time = d;
            self
        }

        pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
            self.warm_up_time = d;
            self
        }

        /// Runs one benchmark unless it is filtered out.
        pub fn bench_function<F: FnMut(&mut Bencher)>(
            &mut self,
            id: &str,
            mut f: F,
        ) -> &mut Self {
            let full = format!("{}/{id}", self.name);
            if let Some(filter) = &self.parent.filter {
                if !full.contains(filter.as_str()) {
                    return self;
                }
            }
            let (warm_up, measurement) = if self.parent.quick {
                (Duration::from_millis(200), Duration::from_secs(1))
            } else {
                (self.warm_up_time, self.measurement_time)
            };

            // Warm up and calibrate: run single-iteration samples until the
            // warm-up window closes, tracking the mean iteration time.
            let warm_start = Instant::now();
            let mut warm_iters = 0u64;
            while warm_start.elapsed() < warm_up || warm_iters == 0 {
                let mut b = Bencher { iters: 1, elapsed: Duration::ZERO };
                f(&mut b);
                warm_iters += 1;
            }
            let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters as f64;
            let per_sample = measurement.as_secs_f64() / self.sample_size as f64;
            let iters = ((per_sample / per_iter.max(1e-9)) as u64).max(1);

            let mut samples: Vec<f64> = (0..self.sample_size)
                .map(|_| {
                    let mut b = Bencher { iters, elapsed: Duration::ZERO };
                    f(&mut b);
                    b.elapsed.as_secs_f64() / iters as f64
                })
                .collect();
            samples.sort_by(|a, b| a.partial_cmp(b).expect("finite sample"));
            let median = samples[samples.len() / 2];
            println!(
                "{full:<45} time: [{} {} {}]  ({} samples x {iters} iters)",
                fmt_time(samples[0]),
                fmt_time(median),
                fmt_time(*samples.last().expect("non-empty")),
                samples.len(),
            );
            self
        }

        pub fn finish(&mut self) {}
    }

    fn fmt_time(secs: f64) -> String {
        if secs >= 1.0 {
            format!("{secs:.3} s")
        } else if secs >= 1e-3 {
            format!("{:.3} ms", secs * 1e3)
        } else if secs >= 1e-6 {
            format!("{:.3} us", secs * 1e6)
        } else {
            format!("{:.1} ns", secs * 1e9)
        }
    }

    /// Criterion-compatible entry-point macros: each group function takes
    /// `&mut Criterion`; `criterion_main!` builds the `main`.
    #[macro_export]
    macro_rules! criterion_group {
        ($name:ident, $($target:path),+ $(,)?) => {
            fn $name(c: &mut $crate::harness::Criterion) {
                $($target(c);)+
            }
        };
    }

    #[macro_export]
    macro_rules! criterion_main {
        ($($group:path),+ $(,)?) => {
            fn main() {
                let mut c = $crate::harness::Criterion::default();
                $($group(&mut c);)+
            }
        };
    }
}

#[cfg(test)]
mod tests {
    use super::harness::Criterion;

    #[test]
    fn harness_runs_a_trivial_benchmark() {
        std::env::set_var("BENCH_QUICK", "1");
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("smoke");
        let mut runs = 0u64;
        g.sample_size(2).bench_function("noop", |b| {
            b.iter(|| {
                runs += 1;
                runs
            })
        });
        g.finish();
        assert!(runs > 0, "benchmark closure never ran");
    }
}
