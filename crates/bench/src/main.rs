//! `repro` — regenerates every table and figure of the paper.
//!
//! ```text
//! repro all                       # everything, summaries to stdout
//! repro table1 fig4 fig9          # a selection
//! repro all --csv out/            # also write each figure/table as CSV
//! repro all --seed 7 --n 20       # change the seed / per-network sample size
//! repro all --jobs 4              # worker threads (default: all cores)
//! repro all --metrics m.json      # also write the telemetry ledger
//! repro all --metrics-summary     # print the ledger as human tables
//! repro all --progress            # per-figure timing lines on stderr
//! repro all --no-cache            # re-simulate duplicate sessions
//! repro all --streaming           # fold packets live, retain no traces
//! repro fig4 --trace-dir traces/  # dump per-session flight-recorder files
//! repro all --trace-dir traces/ --trace-anomalies   # anomalous sessions only
//! repro campaign --viewers 1000000 --progress       # hybrid capacity plan
//! repro campaign --ledger runs/ --max-shards 4      # checkpoint + resume
//! ```
//!
//! Output is byte-identical for every `--jobs` value: session seeds derive
//! from each session's identity, never from execution order. The metrics
//! ledger is deterministic too once wall-clock timing is disabled
//! (`VSTREAM_WALL=off`), and enabling it never changes the figures —
//! instrumentation is output-neutral by construction.
//!
//! Sessions are memoized across figures by the `vstream::cache` session
//! cache (on by default; sessions are pure functions of their spec, so the
//! figures are byte-identical either way — `scripts/check_determinism.sh`
//! holds this). `--no-cache` is the escape hatch that trades the wall-clock
//! win back for the memory the cache retains.
//!
//! `--streaming` switches the figure drivers to the `vstream::query`
//! streaming mode: analysis folds ride the engine's live packet tap and no
//! session retains a packet trace (cache misses keep one transiently, only
//! to pack it). Figures are byte-identical with the flag on or off — both
//! modes compute through the same folds — so the flag only trades where
//! peak memory goes (`peak_trace_bytes` vs `peak_flowstate_bytes` in the
//! ledger).
//!
//! `--trace-dir` turns the `vstream::flight` recorder on: each simulated
//! session records structured events (TCP state/cwnd, queue drops, player
//! stalls, block requests) into a bounded ring and dumps them as Chrome
//! trace-event JSON plus a text timeline, named by session identity.
//! Tracing never changes figures, ledgers, or the QoE table — the
//! `scripts/ci.sh` trace-neutrality stage diffs them with the flag on and
//! off. `--trace-anomalies` restricts dumps to sessions that stalled hard
//! or hit a retransmit storm; `--trace-cap` resizes the ring.
//!
//! With `--csv`, the run also writes `qoe_sessions.csv` into the CSV tree:
//! one QoE row (startup delay, stalls, stall ratio, block cadence) per
//! spec-driven session, in deterministic figure/spec order on every
//! execution mode.
//!
//! `repro campaign` is the hybrid fluid/packet capacity planner
//! (`vstream::campaign`): a deterministic packet-level shard calibrates the
//! §6 closed forms, which then price 10k → 1M+ concurrent viewers. It runs
//! alone (not part of `all`), reuses `--seed`, `--jobs`, `--csv` and
//! `--progress`, and adds `--viewers`, `--packet-sessions`, `--shard-size`,
//! `--window`, `--ledger DIR` (checkpoint every shard, resume for free) and
//! `--max-shards K` (stop after K computed shards — the scripted interrupt
//! CI uses to prove resumed output is byte-identical). A failed
//! cross-validation gate exits nonzero. The per-session QoE table is not
//! collected on this path: a resumed campaign skips finished shards, and
//! `qoe_sessions.csv` would otherwise differ between resumed and one-shot
//! runs of identical campaigns.

use std::fs;
use std::path::PathBuf;
use std::time::Instant;

use vstream::figures as f;
use vstream::obs::{collector, ledger_json, ledger_summary};
use vstream::report::{FigureData, TableData};
use vstream::{flight, qoe};

struct Options {
    seed: u64,
    n: usize,
    csv_dir: Option<PathBuf>,
    metrics_path: Option<PathBuf>,
    metrics_summary: bool,
    progress: bool,
    no_cache: bool,
    trace_dir: Option<PathBuf>,
    trace_anomalies: bool,
    trace_cap: Option<usize>,
    viewers: u64,
    packet_sessions: Option<usize>,
    shard_size: Option<usize>,
    window_secs: Option<u64>,
    ledger_dir: Option<PathBuf>,
    max_shards: Option<usize>,
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let mut opts = Options {
        seed: 2026,
        n: 12,
        csv_dir: None,
        metrics_path: None,
        metrics_summary: false,
        progress: false,
        no_cache: false,
        trace_dir: None,
        trace_anomalies: false,
        trace_cap: None,
        viewers: 1_000_000,
        packet_sessions: None,
        shard_size: None,
        window_secs: None,
        ledger_dir: None,
        max_shards: None,
    };
    let mut selected: Vec<String> = Vec::new();
    while let Some(arg) = args.first().cloned() {
        args.remove(0);
        match arg.as_str() {
            "--seed" => opts.seed = take_value(&mut args, "--seed"),
            "--n" => opts.n = take_value(&mut args, "--n"),
            "--jobs" => vstream::set_default_jobs(take_value(&mut args, "--jobs")),
            "--csv" => {
                let dir: String = take_value(&mut args, "--csv");
                opts.csv_dir = Some(PathBuf::from(dir));
            }
            "--metrics" => {
                let path: String = take_value(&mut args, "--metrics");
                opts.metrics_path = Some(PathBuf::from(path));
            }
            "--metrics-summary" => opts.metrics_summary = true,
            "--progress" => opts.progress = true,
            "--no-cache" => opts.no_cache = true,
            "--streaming" => vstream::set_streaming(true),
            "--trace-dir" => {
                let dir: String = take_value(&mut args, "--trace-dir");
                opts.trace_dir = Some(PathBuf::from(dir));
            }
            "--trace-anomalies" => opts.trace_anomalies = true,
            "--trace-cap" => opts.trace_cap = Some(take_value(&mut args, "--trace-cap")),
            "--viewers" => opts.viewers = take_value(&mut args, "--viewers"),
            "--packet-sessions" => {
                opts.packet_sessions = Some(take_value(&mut args, "--packet-sessions"))
            }
            "--shard-size" => opts.shard_size = Some(take_value(&mut args, "--shard-size")),
            "--window" => opts.window_secs = Some(take_value(&mut args, "--window")),
            "--ledger" => {
                let dir: String = take_value(&mut args, "--ledger");
                opts.ledger_dir = Some(PathBuf::from(dir));
            }
            "--max-shards" => opts.max_shards = Some(take_value(&mut args, "--max-shards")),
            "--help" | "-h" => {
                print_usage();
                return;
            }
            other => selected.push(other.to_string()),
        }
    }
    if selected.is_empty() {
        print_usage();
        return;
    }
    let campaign_mode = selected.iter().any(|s| s == "campaign");
    if campaign_mode && selected.len() > 1 {
        eprintln!("error: 'campaign' runs alone (it is a planner, not a figure)");
        std::process::exit(2);
    }
    if selected.iter().any(|s| s == "all") {
        selected = ALL_IDS.iter().map(|s| s.to_string()).collect();
    }
    if let Some(dir) = &opts.csv_dir {
        fs::create_dir_all(dir).expect("create csv output directory");
    }
    // `--progress` needs the span layer's session counts, so any of the
    // three observability flags activates the collector.
    let metered = opts.metrics_path.is_some() || opts.metrics_summary || opts.progress;
    if metered {
        collector::install(collector::wall_from_env());
    }
    if !opts.no_cache {
        vstream::cache::install();
    }
    if let Some(dir) = &opts.trace_dir {
        let ring_cap = opts.trace_cap.unwrap_or(if opts.trace_anomalies {
            flight::ANOMALY_RING
        } else {
            flight::DEFAULT_RING
        });
        flight::install(flight::TraceConfig {
            dir: dir.clone(),
            anomalies_only: opts.trace_anomalies,
            ring_cap,
        })
        .expect("create trace output directory");
    }
    if campaign_mode {
        run_campaign_cmd(&opts);
        emit_metrics(&opts);
        return;
    }
    // The QoE table rides the CSV tree: collect it whenever CSVs are asked
    // for, so every `--csv` run (and every determinism diff of one) carries
    // `qoe_sessions.csv`.
    if opts.csv_dir.is_some() {
        qoe::install();
    }
    let total = selected.len();
    let mut sessions_total: u64 = 0;
    let run_started = Instant::now();
    for (k, id) in selected.iter().enumerate() {
        if opts.progress {
            eprintln!("[repro] ({}/{total}) {id} ...", k + 1);
        }
        let started = Instant::now();
        collector::begin_span(id);
        qoe::begin_figure(id);
        run_one(id, &opts);
        let span = collector::end_span();
        if opts.progress {
            let secs = started.elapsed().as_secs_f64();
            let sessions = span.as_ref().map_or(0, |s| s.sessions);
            sessions_total += sessions;
            let elapsed = run_started.elapsed().as_secs_f64();
            if secs > 0.0 && sessions > 0 {
                eprintln!(
                    "[repro] ({}/{total}) {id} done in {secs:.2}s ({sessions} sessions, \
                     {:.1} sessions/s; total {sessions_total} sessions, {elapsed:.2}s)",
                    k + 1,
                    sessions as f64 / secs
                );
            } else {
                eprintln!(
                    "[repro] ({}/{total}) {id} done in {secs:.2}s \
                     (total {sessions_total} sessions, {elapsed:.2}s)",
                    k + 1
                );
            }
        }
    }
    if let Some(csv) = qoe::take_csv() {
        let dir = opts.csv_dir.as_ref().expect("qoe collector implies --csv");
        let path = dir.join("qoe_sessions.csv");
        fs::write(&path, csv).expect("write qoe csv");
        println!("  wrote {}", path.display());
    }
    emit_metrics(&opts);
}

fn emit_metrics(opts: &Options) {
    if let Some(ledger) = collector::take() {
        if opts.metrics_summary {
            println!("{}", ledger_summary(&ledger));
        }
        if let Some(path) = &opts.metrics_path {
            fs::write(path, ledger_json(&ledger)).expect("write metrics ledger");
            eprintln!("wrote metrics ledger to {}", path.display());
        }
    }
}

/// The `repro campaign` subcommand: build the spec from the shared and
/// campaign-specific flags, run (or resume) it, print the gate verdict and
/// tables, and exit nonzero on a failed cross-validation gate.
fn run_campaign_cmd(opts: &Options) {
    use vstream::campaign::{run_campaign, CampaignOptions, CampaignSpec};
    if opts.viewers == 0 {
        eprintln!("error: invalid value \"0\" for --viewers");
        std::process::exit(2);
    }
    if opts.packet_sessions == Some(0) || opts.shard_size == Some(0) {
        eprintln!("error: --packet-sessions and --shard-size must be nonzero");
        std::process::exit(2);
    }
    if opts.window_secs == Some(0) {
        eprintln!("error: invalid value \"0\" for --window");
        std::process::exit(2);
    }
    let mut spec = CampaignSpec::for_viewers(opts.viewers);
    spec.seed = opts.seed;
    if let Some(n) = opts.packet_sessions {
        spec.packet_sessions = n;
    }
    if let Some(s) = opts.shard_size {
        spec.shard_size = s;
    }
    if let Some(w) = opts.window_secs {
        spec.window_secs = w;
    }
    let copts = CampaignOptions {
        jobs: 0, // resolved to the session layer's `--jobs`-driven default
        ledger_dir: opts.ledger_dir.clone(),
        max_shards: opts.max_shards,
        progress: opts.progress,
    };
    println!("==> campaign");
    match run_campaign(&spec, &copts) {
        Some(report) => {
            println!("campaign {:016x}", report.key);
            println!("{}", report.validation.gate_line());
            for table in &report.tables {
                emit_table(table, opts);
            }
            if !report.validation.pass() {
                emit_metrics(opts);
                std::process::exit(1);
            }
        }
        None => {
            println!(
                "campaign interrupted by --max-shards; completed shards are checkpointed \
                 (rerun with the same spec and --ledger to resume)"
            );
        }
    }
}

fn take_value<T: std::str::FromStr>(args: &mut Vec<String>, flag: &str) -> T {
    if args.is_empty() || args[0].starts_with("--") {
        eprintln!("error: {flag} requires a value");
        std::process::exit(2);
    }
    let raw = args.remove(0);
    raw.parse().unwrap_or_else(|_| {
        eprintln!("error: invalid value {raw:?} for {flag}");
        std::process::exit(2);
    })
}

const ALL_IDS: [&str; 22] = [
    "fig1", "fig2", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10", "fig11",
    "fig12", "table1", "table2", "model-agg", "model-waste", "ext-stalls", "ext-sack", "ext-cc",
    "ext-m3", "ext-agg-pkt", "ext-qoe",
];

fn print_usage() {
    println!(
        "usage: repro [ids...|all] [--seed N] [--n N] [--jobs N] [--csv DIR] \
         [--metrics PATH] [--metrics-summary] [--progress] [--no-cache] [--streaming] \
         [--trace-dir DIR] [--trace-anomalies] [--trace-cap N]"
    );
    println!(
        "       repro campaign [--viewers N] [--packet-sessions N] [--shard-size N] \
         [--window SECS] [--ledger DIR] [--max-shards K] [shared flags]"
    );
    println!("ids: {}", ALL_IDS.join(" "));
}

fn run_one(id: &str, opts: &Options) {
    let (seed, n) = (opts.seed, opts.n);
    println!("==> {id}");
    match id {
        "fig1" => emit_fig(&f::fig1_phases(seed), opts),
        "fig2" => {
            let (a, b) = f::fig2_short_onoff(seed);
            emit_fig(&a, opts);
            emit_fig(&b, opts);
        }
        "fig3" => {
            let (a, corr_a) = f::fig3a_flash_buffering(seed, n);
            emit_fig(&a, opts);
            println!("  buffering/rate correlation (Research): {corr_a:.2}  [paper: 0.85]");
            let (b, corr_b) = f::fig3b_html5_buffering(seed, n);
            emit_fig(&b, opts);
            println!("  buffering/rate correlation (HTML5/IE): {corr_b:.2}  [paper: 0.41]");
        }
        "fig4" => {
            let (a, b) = f::fig4_flash_steady_state(seed, n);
            emit_fig(&a, opts);
            emit_fig(&b, opts);
        }
        "fig5" => {
            let (a, b) = f::fig5_html5_steady_state(seed, n);
            emit_fig(&a, opts);
            emit_fig(&b, opts);
        }
        "fig6" => {
            emit_fig(&f::fig6a_long_onoff(seed), opts);
            emit_fig(&f::fig6b_long_blocks(seed, n.min(8)), opts);
        }
        "fig7" => {
            emit_fig(&f::fig7a_ipad_traces(seed), opts);
            emit_fig(&f::fig7b_ipad_block_vs_rate(seed, n), opts);
        }
        "fig8" => {
            let (fig, corr) = f::fig8_bulk_rates(seed, n);
            emit_fig(&fig, opts);
            println!("  download-rate/encoding-rate correlation: {corr:.2}  [paper: none visible]");
        }
        "fig9" => {
            emit_fig(&f::fig9_ack_clock(seed), opts);
            let (no_reset, with_reset) = f::fig9_idle_reset_ablation(seed);
            println!(
                "  ablation — median first-RTT burst: {no_reset:.0} kB without idle reset, \
                 {with_reset:.0} kB with RFC 5681 reset"
            );
        }
        "fig10" => {
            let (a, b) = f::fig10_netflix_traces(seed);
            emit_fig(&a, opts);
            emit_fig(&b, opts);
        }
        "fig11" => {
            let (a, b) = f::fig11_netflix_buffering(seed, n.min(6));
            emit_fig(&a, opts);
            emit_fig(&b, opts);
        }
        "fig12" => {
            let (a, b) = f::fig12_netflix_blocks(seed, n.min(4));
            emit_fig(&a, opts);
            emit_fig(&b, opts);
        }
        "table1" => {
            let (table, cells) = f::table1_strategy_matrix(seed);
            emit_table(&table, opts);
            let ok = cells.iter().filter(|c| c.matches()).count();
            println!("  {ok}/{} cells match the paper's Table 1", cells.len());
        }
        "table2" => emit_table(&f::table2_strategy_comparison(seed, 60), opts),
        "model-agg" => emit_table(&f::model_aggregate_moments(seed, 4000.0), opts),
        "ext-stalls" => emit_fig(&f::ext_stall_vs_accumulation(seed, n.min(8)), opts),
        "ext-sack" => emit_table(&f::ext_sack_ablation(seed), opts),
        "ext-cc" => emit_table(&f::ext_congestion_ablation(seed), opts),
        "ext-m3" => emit_table(&f::ext_third_moment(seed, 4000.0), opts),
        "ext-agg-pkt" => emit_table(&f::ext_aggregate_packet_level(seed, 40, 1200.0), opts),
        "ext-qoe" => {
            let (fig, table) = f::ext_qoe_load_sweep(seed, n.min(6));
            emit_fig(&fig, opts);
            emit_table(&table, opts);
        }
        "model-waste" => {
            let (threshold, fig) = f::model_interruption_waste(seed);
            println!(
                "  Eq. (7) example: Flash videos shorter than {threshold:.1} s are fully \
                 downloaded at beta = 0.2  [paper: 53.3 s]"
            );
            emit_fig(&fig, opts);
            emit_fig(&f::model_smoothing(), opts);
        }
        other => eprintln!("unknown id {other:?} (try --help)"),
    }
}

fn emit_fig(fig: &FigureData, opts: &Options) {
    print!("{}", fig.summary());
    if let Some(dir) = &opts.csv_dir {
        let path = dir.join(format!("{}.csv", fig.id));
        fs::write(&path, fig.to_csv()).expect("write csv");
        println!("  wrote {}", path.display());
    }
}

fn emit_table(table: &TableData, opts: &Options) {
    println!("{}", table.to_text());
    if let Some(dir) = &opts.csv_dir {
        let path = dir.join(format!("{}.csv", table.id));
        fs::write(&path, table.to_csv()).expect("write csv");
        println!("  wrote {}", path.display());
    }
}
