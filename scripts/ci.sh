#!/usr/bin/env bash
# The full local gate, in the order a reviewer would want failures surfaced:
#
#   1. release build + the whole test suite (unit, integration, doc-adjacent)
#   2. the determinism invariant: byte-identical CSVs at --jobs 1 and
#      --jobs max(nproc, 8), which also covers the timing-wheel event queue
#      and per-worker scratch reuse (both are on by default)
#   3. a quick-mode pass over every benchmark, so a change that breaks a
#      bench harness (or makes a substrate pathologically slow) fails CI
#      rather than the next person's perf run
#
# Usage: scripts/ci.sh
# Everything runs offline; no network access is required.
set -euo pipefail

cd "$(dirname "$0")/.."

echo "==> build (release)"
cargo build --release --offline

echo "==> tests"
cargo test --offline --quiet

echo "==> determinism: CSVs invariant under --jobs"
scripts/check_determinism.sh

echo "==> bench smoke (quick mode, no JSON ledger)"
cargo bench --offline -p vstream-bench --bench substrates -- --quick

echo "OK: build, tests, determinism, and bench smoke all passed"
