#!/usr/bin/env bash
# The full local gate, in the order a reviewer would want failures surfaced:
#
#   1. release build + the whole test suite (unit, integration, doc-adjacent)
#   2. the determinism invariant: byte-identical CSVs and metrics ledger
#      at --jobs 1, --jobs max(nproc, 8), and --no-cache, which also
#      covers the timing-wheel event queue, per-worker scratch reuse, and
#      the cross-figure session cache (all on by default)
#   3. metrics neutrality: a figure slice rendered with and without
#      --metrics must produce byte-identical CSVs, and the ledger must be
#      well-formed JSON carrying its schema_version key
#   3b. streaming equality: the same figure slice rendered with
#      --streaming (live packet-tap folds, no retained traces) must be
#      byte-identical to the batch rendering, and its metered ledger must
#      show the streaming memory inversion — zero peak_trace_bytes with
#      the cache off, nonzero peak_flowstate_bytes
#   3e. ext-qoe determinism: the DASH/LRD load sweep (adaptive client plus
#       seeded cross-traffic aggregate) byte-identical across --jobs 1/8 ×
#       cache on/off × --streaming on/off — the newest figure gets the
#       same invariant the Table 1 suite has, spelled out pairwise
#   3c. trace neutrality: the same slice rendered with --trace-dir must
#      leave figures, the QoE table, and the wall-off ledger byte-identical
#      while producing dump files, and every emitted Chrome trace JSON must
#      parse
#   3d. campaign smoke: a small hybrid campaign passes its cross-validation
#      gate, an interrupted run resumed from the checkpoint ledger emits
#      byte-identical output, and the ledger's shard checkpoints and
#      summary are well-formed
#   4. the packed-format roundtrip suite in release mode: the columnar
#      AoS-vs-SoA equivalence and pack/unpack exactness tests, compiled
#      with release assertions so the checked truncation/corruption paths
#      in PackedTrace::unpack are exercised exactly as production runs them
#   5. a quick-mode pass over every benchmark, so a change that breaks a
#      bench harness (or makes a substrate pathologically slow) fails CI
#      rather than the next person's perf run
#
# Usage: scripts/ci.sh
# Everything runs offline; no network access is required.
set -euo pipefail

cd "$(dirname "$0")/.."

echo "==> build (release)"
cargo build --release --offline

echo "==> tests"
cargo test --offline --quiet

echo "==> determinism: CSVs and metrics ledger invariant under --jobs and --no-cache"
scripts/check_determinism.sh

echo "==> metrics neutrality: --metrics must not change the figures"
obs_out="$(mktemp -d)"
trap 'rm -rf "$obs_out"' EXIT
target/release/repro fig2 fig4 --csv "$obs_out/plain" > /dev/null
target/release/repro fig2 fig4 --csv "$obs_out/metered" \
    --metrics "$obs_out/metrics.json" > /dev/null
diff -r "$obs_out/plain" "$obs_out/metered"
python3 -m json.tool "$obs_out/metrics.json" > /dev/null
grep -q '"schema_version"' "$obs_out/metrics.json"

echo "==> streaming equality: --streaming must not change the figures"
target/release/repro fig2 fig4 --streaming --csv "$obs_out/streaming" > /dev/null
diff -r "$obs_out/plain" "$obs_out/streaming"
# With the cache off no streaming session retains a trace at all, so the
# wall-mode ledger must report peak_trace_bytes = 0 while the fold state
# that replaced it registers as nonzero peak_flowstate_bytes.
target/release/repro fig2 fig4 --streaming --no-cache --csv "$obs_out/streaming-nc" \
    --metrics "$obs_out/streaming.metrics.json" > /dev/null
diff -r "$obs_out/plain" "$obs_out/streaming-nc"
grep -q '"peak_trace_bytes":0[,}]' "$obs_out/streaming.metrics.json"
grep -qE '"peak_flowstate_bytes":[1-9]' "$obs_out/streaming.metrics.json"

echo "==> ext-qoe determinism: byte-identical across --jobs, cache, and --streaming"
target/release/repro ext-qoe --jobs 1 --csv "$obs_out/extqoe-ref" > "$obs_out/extqoe-ref.txt"
target/release/repro ext-qoe --jobs 8 --csv "$obs_out/extqoe-j8" > /dev/null
target/release/repro ext-qoe --jobs 8 --no-cache --csv "$obs_out/extqoe-nc" > /dev/null
target/release/repro ext-qoe --jobs 8 --streaming --csv "$obs_out/extqoe-st" > /dev/null
target/release/repro ext-qoe --jobs 1 --streaming --no-cache --csv "$obs_out/extqoe-stnc" \
    > /dev/null
for variant in extqoe-j8 extqoe-nc extqoe-st extqoe-stnc; do
    diff -r "$obs_out/extqoe-ref" "$obs_out/$variant"
done
# The sweep must produce both artifacts: the stall-ratio curve and the
# switch-rate table.
test -f "$obs_out/extqoe-ref/ext-qoe.csv"
test -f "$obs_out/extqoe-ref/ext-qoe-switches.csv"

echo "==> trace neutrality: --trace-dir must not change figures, QoE table, or ledger"
VSTREAM_WALL=off target/release/repro fig2 fig4 --csv "$obs_out/tr-plain" \
    --metrics "$obs_out/tr-plain.metrics.json" > /dev/null
VSTREAM_WALL=off target/release/repro fig2 fig4 --csv "$obs_out/tr-traced" \
    --metrics "$obs_out/tr-traced.metrics.json" \
    --trace-dir "$obs_out/tr-dumps" --trace-cap 4096 > /dev/null
diff -r "$obs_out/tr-plain" "$obs_out/tr-traced"
diff "$obs_out/tr-plain.metrics.json" "$obs_out/tr-traced.metrics.json"
# Dumps must exist and every Chrome trace JSON must be valid JSON.
ls "$obs_out/tr-dumps"/*.trace.json > /dev/null
for dump in "$obs_out/tr-dumps"/*.trace.json; do
    python3 -m json.tool "$dump" > /dev/null
done

echo "==> campaign smoke: gate passes, interrupt + resume is byte-identical, ledger parses"
# One uninterrupted run (the gate FAILing would exit nonzero here), then
# the same campaign executed as two interrupted runs against a checkpoint
# ledger plus a resuming run — stdout must match the one-shot run byte for
# byte, and the content-addressed ledger must hold every shard checkpoint
# plus a well-formed summary.
target/release/repro campaign --viewers 10000 --csv "$obs_out/camp-oneshot" \
    > "$obs_out/camp-oneshot.txt"
target/release/repro campaign --viewers 10000 --ledger "$obs_out/camp-ledger" \
    --max-shards 1 > /dev/null
target/release/repro campaign --viewers 10000 --ledger "$obs_out/camp-ledger" \
    --max-shards 1 --jobs 8 > /dev/null
target/release/repro campaign --viewers 10000 --ledger "$obs_out/camp-ledger" \
    --jobs 8 --csv "$obs_out/camp-resumed" > "$obs_out/camp-resumed.txt"
diff -r "$obs_out/camp-oneshot" "$obs_out/camp-resumed"
diff <(sed "s|$obs_out/camp-oneshot|CSV|" "$obs_out/camp-oneshot.txt") \
     <(sed "s|$obs_out/camp-resumed|CSV|" "$obs_out/camp-resumed.txt")
ledger_dir=("$obs_out"/camp-ledger/campaign-*)
test "$(ls "${ledger_dir[0]}"/shard-*.ckpt | wc -l)" -eq 4
head -n 1 "${ledger_dir[0]}"/shard-0000.ckpt | grep -q '^vstream-campaign-shard v1$'
grep -q '^gate PASS$' "${ledger_dir[0]}/summary.txt"

echo "==> packed-format roundtrip (release mode: checked unpack corruption paths)"
cargo test --offline --release --quiet -p vstream-capture

echo "==> bench smoke (quick mode, no JSON ledger)"
cargo bench --offline -p vstream-bench --bench substrates -- --quick

echo "OK: build, tests, determinism, metrics neutrality, streaming equality, trace neutrality, campaign smoke, roundtrip, and bench smoke all passed"
