#!/usr/bin/env bash
# Verifies the executor's and session cache's core invariant: `repro`
# emits byte-identical CSVs — and, with wall-clock timing disabled, a
# byte-identical metrics ledger — for any --jobs value, with the session
# cache on or off, with --streaming on or off, and with --trace-dir on or
# off. Runs the full suite seven times (serial, a multi-worker pool,
# --no-cache, streaming mode at both worker counts, and two traced
# passes) and diffs the output trees and ledgers, then runs campaign mode
# (the sharded, resumable hybrid executor) at both worker counts and
# diffs its tables and stdout the same way.
#
# The second pass uses max(nproc, 8) workers: even on a single-core host
# this exercises the threaded executor path (8 OS threads racing over the
# work queue), which is the path the determinism invariant protects. The
# third pass re-simulates every session instead of reading the cache,
# which is the path the purity invariant protects. The streaming passes
# compute every figure through live packet-tap folds with no retained
# traces, which is the path the streaming/batch equivalence contract
# (DESIGN.md §11) protects — at both worker counts, so fold dispatch is
# shown to be execution-order-free too. The traced passes (DESIGN.md §12)
# hold two things at once: the flight recorder never perturbs any output
# (CSV trees, QoE table, stdout, ledger all byte-match pass 1), and the
# dump files themselves are deterministic — pass 6 runs batch at --jobs 1,
# pass 7 streaming at --jobs N, and their trace directories must be
# byte-identical file for file. A small --trace-cap bounds dump volume;
# ring truncation is itself deterministic (last N events).
#
# Usage: [JOBS=N] scripts/check_determinism.sh [repro-args...]
#   e.g. scripts/check_determinism.sh --seed 7 --n 4
set -euo pipefail

cd "$(dirname "$0")/.."

out="$(mktemp -d)"
trap 'rm -rf "$out"' EXIT

jobs_n="${JOBS:-$(nproc)}"
if [ "$jobs_n" -lt 8 ]; then jobs_n=8; fi

cargo build --release --offline --bin repro

echo "==> pass 1: --jobs 1"
VSTREAM_WALL=off target/release/repro all --jobs 1 --csv "$out/jobs1" \
    --metrics "$out/jobs1.metrics.json" "$@" > "$out/jobs1.txt"
echo "==> pass 2: --jobs $jobs_n"
VSTREAM_WALL=off target/release/repro all --jobs "$jobs_n" --csv "$out/jobsN" \
    --metrics "$out/jobsN.metrics.json" "$@" > "$out/jobsN.txt"

echo "==> pass 3: --no-cache"
VSTREAM_WALL=off target/release/repro all --jobs "$jobs_n" --no-cache --csv "$out/nocache" \
    --metrics "$out/nocache.metrics.json" "$@" > "$out/nocache.txt"

echo "==> pass 4: --streaming --jobs 1"
VSTREAM_WALL=off target/release/repro all --jobs 1 --streaming --csv "$out/stream1" \
    --metrics "$out/stream1.metrics.json" "$@" > "$out/stream1.txt"

echo "==> pass 5: --streaming --jobs $jobs_n"
VSTREAM_WALL=off target/release/repro all --jobs "$jobs_n" --streaming --csv "$out/streamN" \
    --metrics "$out/streamN.metrics.json" "$@" > "$out/streamN.txt"

echo "==> pass 6: --trace-dir --jobs 1"
VSTREAM_WALL=off target/release/repro all --jobs 1 --csv "$out/trace1" \
    --trace-dir "$out/tr1" --trace-cap 1024 \
    --metrics "$out/trace1.metrics.json" "$@" > "$out/trace1.txt"

echo "==> pass 7: --trace-dir --streaming --jobs $jobs_n"
VSTREAM_WALL=off target/release/repro all --jobs "$jobs_n" --streaming --csv "$out/traceN" \
    --trace-dir "$out/trN" --trace-cap 1024 \
    --metrics "$out/traceN.metrics.json" "$@" > "$out/traceN.txt"

# Campaign mode has its own executor (sharded, resumable) on top of the
# same session layer, so its worker-count invariance is checked separately
# from the figure suite.
echo "==> pass 8: campaign --jobs 1"
VSTREAM_WALL=off target/release/repro campaign --viewers 10000 --jobs 1 \
    --csv "$out/camp1" > "$out/camp1.txt"
echo "==> pass 9: campaign --jobs $jobs_n"
VSTREAM_WALL=off target/release/repro campaign --viewers 10000 --jobs "$jobs_n" \
    --csv "$out/campN" > "$out/campN.txt"

diff -r "$out/jobs1" "$out/jobsN"
diff -r "$out/jobs1" "$out/nocache"
diff -r "$out/jobs1" "$out/stream1"
diff -r "$out/jobs1" "$out/streamN"
diff -r "$out/jobs1" "$out/trace1"
diff -r "$out/jobs1" "$out/traceN"
# The dump files must themselves be deterministic: batch serial vs
# streaming multi-worker must produce the same file set with the same
# bytes.
diff -r "$out/tr1" "$out/trN"
diff -r "$out/camp1" "$out/campN"
diff <(sed "s|$out/camp1|CSV|" "$out/camp1.txt") \
     <(sed "s|$out/campN|CSV|" "$out/campN.txt")
# The stdout reports embed the csv paths; compare them with the paths
# normalised away.
diff <(sed "s|$out/jobs1|CSV|" "$out/jobs1.txt") \
     <(sed "s|$out/jobsN|CSV|" "$out/jobsN.txt")
diff <(sed "s|$out/jobs1|CSV|" "$out/jobs1.txt") \
     <(sed "s|$out/nocache|CSV|" "$out/nocache.txt")
diff <(sed "s|$out/jobs1|CSV|" "$out/jobs1.txt") \
     <(sed "s|$out/stream1|CSV|" "$out/stream1.txt")
diff <(sed "s|$out/jobs1|CSV|" "$out/jobs1.txt") \
     <(sed "s|$out/streamN|CSV|" "$out/streamN.txt")
diff <(sed "s|$out/jobs1|CSV|" "$out/jobs1.txt") \
     <(sed "s|$out/trace1|CSV|" "$out/trace1.txt")
diff <(sed "s|$out/jobs1|CSV|" "$out/jobs1.txt") \
     <(sed "s|$out/traceN|CSV|" "$out/traceN.txt")
# The telemetry ledger must be jobs-, cache-, and mode-invariant too (wall
# timing is off, so every remaining quantity is a pure function of the
# session set; the cache_* counters and peak_*_bytes gauges are
# execution-dependent and zeroed).
diff "$out/jobs1.metrics.json" "$out/jobsN.metrics.json"
diff "$out/jobs1.metrics.json" "$out/nocache.metrics.json"
diff "$out/jobs1.metrics.json" "$out/stream1.metrics.json"
diff "$out/jobs1.metrics.json" "$out/streamN.metrics.json"
diff "$out/jobs1.metrics.json" "$out/trace1.metrics.json"
diff "$out/jobs1.metrics.json" "$out/traceN.metrics.json"

echo "OK: output and metrics ledger are byte-identical across --jobs 1, --jobs $jobs_n, --no-cache, --streaming, and --trace-dir (and the trace dumps and campaign mode are deterministic too)"
