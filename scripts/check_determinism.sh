#!/usr/bin/env bash
# Verifies the parallel executor's core invariant: `repro` emits
# byte-identical CSVs for any --jobs value. Runs the full suite twice
# (serial, then a multi-worker pool) and diffs the output trees.
#
# The second pass uses max(nproc, 8) workers: even on a single-core host
# this exercises the threaded executor path (8 OS threads racing over the
# work queue), which is the path the determinism invariant protects.
#
# Usage: [JOBS=N] scripts/check_determinism.sh [repro-args...]
#   e.g. scripts/check_determinism.sh --seed 7 --n 4
set -euo pipefail

cd "$(dirname "$0")/.."

out="$(mktemp -d)"
trap 'rm -rf "$out"' EXIT

jobs_n="${JOBS:-$(nproc)}"
if [ "$jobs_n" -lt 8 ]; then jobs_n=8; fi

cargo build --release --offline --bin repro

echo "==> pass 1: --jobs 1"
target/release/repro all --jobs 1 --csv "$out/jobs1" "$@" > "$out/jobs1.txt"
echo "==> pass 2: --jobs $jobs_n"
target/release/repro all --jobs "$jobs_n" --csv "$out/jobsN" "$@" > "$out/jobsN.txt"

diff -r "$out/jobs1" "$out/jobsN"
# The stdout reports embed the csv paths; compare them with the paths
# normalised away.
diff <(sed "s|$out/jobs1|CSV|" "$out/jobs1.txt") \
     <(sed "s|$out/jobsN|CSV|" "$out/jobsN.txt")

echo "OK: output is byte-identical across --jobs 1 and --jobs $jobs_n"
