#!/usr/bin/env bash
# Verifies the executor's and session cache's core invariant: `repro`
# emits byte-identical CSVs — and, with wall-clock timing disabled, a
# byte-identical metrics ledger — for any --jobs value, with the session
# cache on or off, and with --streaming on or off. Runs the full suite
# five times (serial, a multi-worker pool, --no-cache, and streaming mode
# at both worker counts) and diffs the output trees and ledgers.
#
# The second pass uses max(nproc, 8) workers: even on a single-core host
# this exercises the threaded executor path (8 OS threads racing over the
# work queue), which is the path the determinism invariant protects. The
# third pass re-simulates every session instead of reading the cache,
# which is the path the purity invariant protects. The streaming passes
# compute every figure through live packet-tap folds with no retained
# traces, which is the path the streaming/batch equivalence contract
# (DESIGN.md §11) protects — at both worker counts, so fold dispatch is
# shown to be execution-order-free too.
#
# Usage: [JOBS=N] scripts/check_determinism.sh [repro-args...]
#   e.g. scripts/check_determinism.sh --seed 7 --n 4
set -euo pipefail

cd "$(dirname "$0")/.."

out="$(mktemp -d)"
trap 'rm -rf "$out"' EXIT

jobs_n="${JOBS:-$(nproc)}"
if [ "$jobs_n" -lt 8 ]; then jobs_n=8; fi

cargo build --release --offline --bin repro

echo "==> pass 1: --jobs 1"
VSTREAM_WALL=off target/release/repro all --jobs 1 --csv "$out/jobs1" \
    --metrics "$out/jobs1.metrics.json" "$@" > "$out/jobs1.txt"
echo "==> pass 2: --jobs $jobs_n"
VSTREAM_WALL=off target/release/repro all --jobs "$jobs_n" --csv "$out/jobsN" \
    --metrics "$out/jobsN.metrics.json" "$@" > "$out/jobsN.txt"

echo "==> pass 3: --no-cache"
VSTREAM_WALL=off target/release/repro all --jobs "$jobs_n" --no-cache --csv "$out/nocache" \
    --metrics "$out/nocache.metrics.json" "$@" > "$out/nocache.txt"

echo "==> pass 4: --streaming --jobs 1"
VSTREAM_WALL=off target/release/repro all --jobs 1 --streaming --csv "$out/stream1" \
    --metrics "$out/stream1.metrics.json" "$@" > "$out/stream1.txt"

echo "==> pass 5: --streaming --jobs $jobs_n"
VSTREAM_WALL=off target/release/repro all --jobs "$jobs_n" --streaming --csv "$out/streamN" \
    --metrics "$out/streamN.metrics.json" "$@" > "$out/streamN.txt"

diff -r "$out/jobs1" "$out/jobsN"
diff -r "$out/jobs1" "$out/nocache"
diff -r "$out/jobs1" "$out/stream1"
diff -r "$out/jobs1" "$out/streamN"
# The stdout reports embed the csv paths; compare them with the paths
# normalised away.
diff <(sed "s|$out/jobs1|CSV|" "$out/jobs1.txt") \
     <(sed "s|$out/jobsN|CSV|" "$out/jobsN.txt")
diff <(sed "s|$out/jobs1|CSV|" "$out/jobs1.txt") \
     <(sed "s|$out/nocache|CSV|" "$out/nocache.txt")
diff <(sed "s|$out/jobs1|CSV|" "$out/jobs1.txt") \
     <(sed "s|$out/stream1|CSV|" "$out/stream1.txt")
diff <(sed "s|$out/jobs1|CSV|" "$out/jobs1.txt") \
     <(sed "s|$out/streamN|CSV|" "$out/streamN.txt")
# The telemetry ledger must be jobs-, cache-, and mode-invariant too (wall
# timing is off, so every remaining quantity is a pure function of the
# session set; the cache_* counters and peak_*_bytes gauges are
# execution-dependent and zeroed).
diff "$out/jobs1.metrics.json" "$out/jobsN.metrics.json"
diff "$out/jobs1.metrics.json" "$out/nocache.metrics.json"
diff "$out/jobs1.metrics.json" "$out/stream1.metrics.json"
diff "$out/jobs1.metrics.json" "$out/streamN.metrics.json"

echo "OK: output and metrics ledger are byte-identical across --jobs 1, --jobs $jobs_n, --no-cache, and --streaming"
