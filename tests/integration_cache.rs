//! The session cache's hard invariants, end to end:
//!
//! 1. **Single execution** — two drivers requesting the same shared
//!    [`SessionSpec`] trigger exactly one engine run; the second gets the
//!    retained (packed) copy back, decoded bit-identically.
//! 2. **Transparency** — figure output is byte-identical with the cache
//!    installed or not, serial or parallel. The cache may skip work; it
//!    must never change results.
//! 3. **Selectivity** — only specs marked `shared()` are retained;
//!    one-off sessions leave no footprint in the store or the counters.
//!
//! The cache and collector are process-global, so everything runs from one
//! `#[test]`. Metered passes install the collector with wall timing *on*:
//! the `cache_*` counters are `Counter::EXECUTION_DEPENDENT` and a
//! byte-comparable (wall-off) ledger deliberately zeroes them.

use vstream::cache;
use vstream::figures as f;
use vstream::obs::{collector, Counter};
use vstream::prelude::*;

fn spec(seed: u64) -> SessionSpec {
    SessionSpec::new(
        Client::Firefox,
        Container::Flash,
        Video::new(1, 1_000_000, SimDuration::from_secs(600)),
        NetworkProfile::Research,
        seed,
        SimDuration::from_secs(30),
    )
}

/// Two figures that sample the *same* Table 1 cells (Firefox/Flash over all
/// four networks), so the second one can be served entirely from the cache.
fn figure_suite(jobs: usize) -> Vec<String> {
    set_default_jobs(jobs);
    let (fig3a, _corr) = f::fig3a_flash_buffering(97, 2);
    let (fig4a, fig4b) = f::fig4_flash_steady_state(97, 2);
    set_default_jobs(0);
    vec![fig3a.to_csv(), fig4a.to_csv(), fig4b.to_csv()]
}

#[test]
fn cache_is_transparent_selective_and_single_execution() {
    // --- 1. Same shared spec requested twice: one engine run, identical
    // outcomes. The ledger distinguishes the paths (1 miss + 1 hit) while
    // its session counts stay replay-equalized by design.
    collector::install(true);
    cache::install();
    let s = spec(301).shared();
    let first = s.run().expect("valid cell");
    let second = s.run().expect("valid cell");
    assert_eq!(first.trace, second.trace);
    assert_eq!(first.trace.connections(), second.trace.connections());
    assert_eq!(first.logic.read_total(), second.logic.read_total());
    assert_eq!(first.connections, second.connections);
    assert_eq!(first.connection_stats, second.connection_stats);
    assert_eq!(first.base_rtt, second.base_rtt);
    assert_eq!(cache::len(), 1);
    assert!(cache::bytes_retained() > 0);
    // Packed retention: the store must hold far less than the live trace
    // (~120 bytes/record raw; the packed form targets ~20×).
    let raw = first.trace.len() as u64 * 120;
    assert!(
        cache::bytes_retained() * 4 < raw,
        "retained {} bytes for a {} byte raw trace — packing ineffective",
        cache::bytes_retained(),
        raw
    );
    let ledger = collector::take().expect("metered run");
    assert_eq!(
        ledger.totals.counter(Counter::CacheMisses),
        1,
        "engine must run exactly once for a repeated shared spec"
    );
    assert_eq!(ledger.totals.counter(Counter::CacheHits), 1);
    assert!(ledger.totals.counter(Counter::CacheBytesRetained) > 0);
    assert_eq!(
        ledger.totals.counter(Counter::SimSessions),
        2,
        "hits replay the session's metrics delta, keeping ledgers cache-independent"
    );
    cache::uninstall();

    // --- 2. In-batch dedup: duplicate shared specs compute once, and every
    // index still sees its own outcome.
    collector::install(true);
    cache::install();
    let batch = vec![spec(302).shared(), spec(303).shared(), spec(302).shared()];
    let outs = run_many_jobs(&batch, 2);
    let t = |i: usize| &outs[i].as_ref().expect("valid cell").trace;
    assert_eq!(t(0), t(2), "duplicate indices must agree");
    let ledger = collector::take().expect("metered run");
    assert_eq!(ledger.totals.counter(Counter::CacheMisses), 2);
    assert_eq!(ledger.totals.counter(Counter::CacheHits), 1);
    assert_eq!(cache::len(), 2);
    cache::uninstall();

    // --- 3. Selectivity: non-shared specs bypass retention entirely, even
    // with the cache installed and even when duplicated in a batch.
    collector::install(true);
    cache::install();
    let plain = vec![spec(304), spec(304)];
    let outs = run_many_jobs(&plain, 1);
    assert_eq!(
        outs[0].as_ref().expect("valid").trace,
        outs[1].as_ref().expect("valid").trace,
        "purity holds with or without the cache"
    );
    let ledger = collector::take().expect("metered run");
    assert_eq!(ledger.totals.counter(Counter::CacheMisses), 0);
    assert_eq!(ledger.totals.counter(Counter::CacheHits), 0);
    assert_eq!(cache::len(), 0, "non-shared sessions must not be retained");
    cache::uninstall();

    // --- 4. Transparency at the figure level: byte-identical CSVs with the
    // cache off, on (serial), and on (parallel) — and the second figure of
    // the cached suite is served from the first one's sessions.
    let baseline = figure_suite(1); // cache off

    collector::install(true);
    cache::install();
    let cached_serial = figure_suite(1);
    let ledger = collector::take().expect("metered run");
    assert!(
        ledger.totals.counter(Counter::CacheHits) >= 8,
        "fig4 must hit fig3a's retained cells, saw {} hits",
        ledger.totals.counter(Counter::CacheHits)
    );
    cache::uninstall();

    cache::install();
    let cached_parallel = figure_suite(8);
    cache::uninstall();

    assert_eq!(baseline, cached_serial, "cache-on output differs from cache-off");
    assert_eq!(baseline, cached_parallel, "cached parallel output differs");
}
