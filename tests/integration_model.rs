//! Cross-validation between the packet-level simulator and the §6 analytic
//! model: the same quantities measured two independent ways must agree.

use vstream::prelude::*;
use vstream::session::run_cell_interrupted;
use vstream_model::{full_download_duration_threshold, unused_bytes};

#[test]
fn packet_level_waste_matches_closed_form() {
    // Flash strategy, 1 Mbps, 360 s video, viewer quits at beta = 0.25
    // (90 s). Closed form: downloaded playback = min(40 + 1.25*90, 360)
    // = 152.5 s; waste = 62.5 s of playback = 7.8 MB.
    let video = Video::new(1, 1_000_000, SimDuration::from_secs(360));
    let out = run_cell_interrupted(
        Client::Firefox,
        Container::Flash,
        video,
        NetworkProfile::Research,
        51,
        SimDuration::from_secs(180),
        SimDuration::from_secs(90),
    )
    .unwrap();
    let downloaded = out.trace.total_downloaded() as f64;
    let watched = video.playback_bytes(90.0) as f64;
    let measured_waste = (downloaded - watched) / 1e6;

    let predicted = unused_bytes(1e6, 360.0, 40.0, 1.25, 0.25) / 1e6;
    let err = (measured_waste - predicted).abs() / predicted;
    assert!(
        err < 0.2,
        "measured waste {measured_waste:.2} MB vs Eq. (8) {predicted:.2} MB"
    );
}

#[test]
fn eq7_threshold_verified_by_simulation() {
    // Eq. (7): with B' = 40 s and k = 1.25, a viewer watching 20% fully
    // downloads any video shorter than 53.3 s. Check both sides of the
    // boundary in packet-level simulation.
    let threshold = full_download_duration_threshold(40.0, 1.25, 0.2);
    assert!((threshold - 53.333).abs() < 0.01);

    // 45 s video, watched 9 s: fully downloaded.
    let short = Video::new(1, 1_000_000, SimDuration::from_secs(45));
    let out = run_cell_interrupted(
        Client::Firefox,
        Container::Flash,
        short,
        NetworkProfile::Research,
        53,
        SimDuration::from_secs(60),
        SimDuration::from_secs(9),
    )
    .unwrap();
    assert_eq!(
        out.trace.total_downloaded(),
        short.size_bytes(),
        "a 45 s video must be fully downloaded before a 9 s interrupt"
    );

    // 200 s video, watched 40 s: interrupted well before completion.
    let long = Video::new(1, 1_000_000, SimDuration::from_secs(200));
    let out = run_cell_interrupted(
        Client::Firefox,
        Container::Flash,
        long,
        NetworkProfile::Research,
        53,
        SimDuration::from_secs(180),
        SimDuration::from_secs(40),
    )
    .unwrap();
    assert!(
        out.trace.total_downloaded() < long.size_bytes(),
        "a 200 s video must not be fully downloaded after 40 s"
    );
}

#[test]
fn steady_state_rate_matches_model_assumption() {
    // The model assumes the steady-state download rate is k * e. Verify the
    // packet-level Flash session delivers that rate.
    let video = Video::new(1, 800_000, SimDuration::from_secs(2400));
    let out = run_cell(
        Client::Firefox,
        Container::Flash,
        video,
        NetworkProfile::Research,
        57,
        SimDuration::from_secs(180),
    )
    .unwrap();
    let phases = SessionPhases::from_trace(&out.trace, &AnalysisConfig::default());
    let rate = phases.steady_state_rate_bps.expect("steady state exists");
    let expected = 1.25 * 800_000.0;
    let err = (rate - expected).abs() / expected;
    assert!(err < 0.1, "steady rate {rate:.0} vs k*e = {expected:.0}");
}
