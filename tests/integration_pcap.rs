//! pcap export of a real simulated session: the file must be structurally
//! valid libpcap that an external tool could open.

use vstream::prelude::*;
use vstream_capture::pcap::write_pcap;

#[test]
fn session_exports_valid_pcap() {
    let out = run_cell(
        Client::InternetExplorer,
        Container::Html5,
        Video::new(1, 1_000_000, SimDuration::from_secs(300)),
        NetworkProfile::Research,
        71,
        SimDuration::from_secs(30),
    )
    .unwrap();

    let mut buf = Vec::new();
    write_pcap(&out.trace, &mut buf).unwrap();

    // Global header.
    assert!(buf.len() > 24);
    assert_eq!(&buf[0..4], &0xa1b2_c3d4u32.to_le_bytes());
    let snaplen = u32::from_le_bytes(buf[16..20].try_into().unwrap());
    assert_eq!(snaplen, 65535);

    // Walk every record; counts and offsets must be self-consistent.
    let mut offset = 24;
    let mut packets = 0usize;
    let mut last_ts = (0u32, 0u32);
    while offset < buf.len() {
        assert!(offset + 16 <= buf.len(), "truncated record header");
        let secs = u32::from_le_bytes(buf[offset..offset + 4].try_into().unwrap());
        let micros = u32::from_le_bytes(buf[offset + 4..offset + 8].try_into().unwrap());
        let incl = u32::from_le_bytes(buf[offset + 8..offset + 12].try_into().unwrap()) as usize;
        let orig = u32::from_le_bytes(buf[offset + 12..offset + 16].try_into().unwrap()) as usize;
        assert!(micros < 1_000_000, "bad microseconds field");
        assert!(incl >= 40, "snapped below the headers");
        assert!(orig >= incl, "orig_len smaller than incl_len");
        // Timestamps are monotone.
        assert!((secs, micros) >= last_ts, "timestamps went backwards");
        last_ts = (secs, micros);
        // The IP header parses: version 4, protocol TCP.
        let ip = &buf[offset + 16..offset + 16 + 20];
        assert_eq!(ip[0] >> 4, 4, "not IPv4");
        assert_eq!(ip[9], 6, "not TCP");
        offset += 16 + incl;
        packets += 1;
    }
    assert_eq!(offset, buf.len(), "trailing garbage");
    assert_eq!(packets, out.trace.len(), "packet count mismatch");
}

#[test]
fn multi_connection_session_uses_distinct_ports() {
    let out = run_cell(
        Client::Ipad,
        Container::Html5,
        Video::new(1, 2_000_000, SimDuration::from_secs(600)),
        NetworkProfile::Research,
        73,
        SimDuration::from_secs(40),
    )
    .unwrap();
    assert!(out.connections > 1);

    let mut buf = Vec::new();
    write_pcap(&out.trace, &mut buf).unwrap();

    // Collect the distinct client ports present in the capture.
    let mut ports = std::collections::BTreeSet::new();
    let mut offset = 24;
    while offset < buf.len() {
        let incl = u32::from_le_bytes(buf[offset + 8..offset + 12].try_into().unwrap()) as usize;
        let ip = &buf[offset + 16..];
        let src = [ip[12], ip[13], ip[14], ip[15]];
        let tcp = &ip[20..];
        let (sport, dport) = (
            u16::from_be_bytes([tcp[0], tcp[1]]),
            u16::from_be_bytes([tcp[2], tcp[3]]),
        );
        // The client is 10.0.0.1.
        let client_port = if src == [10, 0, 0, 1] { sport } else { dport };
        ports.insert(client_port);
        offset += 16 + incl;
    }
    assert_eq!(
        ports.len(),
        out.connections,
        "one client port per TCP connection"
    );
}
