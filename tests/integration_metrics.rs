//! The observability layer's two hard invariants, end to end:
//!
//! 1. **Output neutrality** — figure output is byte-identical whether the
//!    metrics collector is installed or not. Instrumentation may observe
//!    the simulation; it must never steer it.
//! 2. **Determinism** — with wall-clock timing disabled, the serialized
//!    ledger is byte-identical at any worker count: per-worker registries
//!    merge commutatively and associatively, so scheduling cannot leak in.
//!
//! The collector is process-global, so everything runs from one `#[test]`.

use vstream::figures as f;
use vstream::obs::{collector, ledger_json, Counter, HistId};
use vstream::prelude::*;

/// A small figure slice touching both steady-state strategies and the
/// single-session traces, at a given worker count.
fn figure_suite(jobs: usize) -> Vec<String> {
    set_default_jobs(jobs);
    let mut out = Vec::new();
    collector::begin_span("fig4"); // no-op when the collector is inactive
    let (fig4a, fig4b) = f::fig4_flash_steady_state(97, 2);
    collector::end_span();
    out.push(fig4a.to_csv());
    out.push(fig4b.to_csv());
    collector::begin_span("fig2");
    let (fig2a, fig2b) = f::fig2_short_onoff(100);
    collector::end_span();
    out.push(fig2a.to_csv());
    out.push(fig2b.to_csv());
    out
}

#[test]
fn metrics_are_output_neutral_and_ledgers_jobs_invariant() {
    // Baseline: collector inactive, exactly what a run without --metrics does.
    let baseline = figure_suite(1);

    // Metered serial run (wall clock off for byte-comparable ledgers).
    collector::install(false);
    let metered_serial = figure_suite(1);
    let ledger_serial = collector::take().expect("ledger from serial run");

    // Metered parallel run.
    collector::install(false);
    let metered_parallel = figure_suite(8);
    let ledger_parallel = collector::take().expect("ledger from parallel run");
    set_default_jobs(0); // restore the all-cores default for other binaries

    // 1. Output neutrality: metering changed nothing the figures emit.
    assert_eq!(baseline, metered_serial, "metrics-on vs metrics-off differ");
    assert_eq!(baseline, metered_parallel, "metered parallel output differs");

    // 2. Ledger determinism across worker counts, byte for byte.
    let json_serial = ledger_json(&ledger_serial);
    let json_parallel = ledger_json(&ledger_parallel);
    assert_eq!(json_serial, json_parallel, "ledger depends on --jobs");

    // The ledger actually carries the quantities the issue promises.
    let m = &ledger_serial.totals;
    assert!(m.counter(Counter::SimSessions) > 0);
    assert!(m.counter(Counter::SimEventsScheduled) > 0);
    assert!(m.counter(Counter::TcpDataSegmentsSent) > 0);
    assert!(m.counter(Counter::SimScratchUses) >= m.counter(Counter::SimScratchReuseHits));
    assert!(
        !m.hist(HistId::SimWheelOccupancy).is_empty(),
        "wheel occupancy histogram empty — queue instrumentation unplugged"
    );
    assert_eq!(ledger_serial.spans.len(), 2);
    assert_eq!(ledger_serial.spans[0].name, "fig4");
    assert!(ledger_serial.spans[0].sessions > 0);
    assert_eq!(
        ledger_serial.spans[0].wall_ns, 0,
        "wall timing must be zeroed when disabled"
    );
    assert!(json_serial.contains("\"schema_version\":"));
    assert!(json_serial.contains("\"research\""), "per-profile slot missing");
}
