//! The Table 1 matrix, verified cell by cell through the public API.

use vstream::figures::table1_strategy_matrix;

#[test]
fn table1_matches_the_paper_exactly() {
    let (table, cells) = table1_strategy_matrix(2026);
    let mismatches: Vec<String> = cells
        .iter()
        .filter(|c| !c.matches())
        .map(|c| {
            format!(
                "{} / {}: expected {:?}, measured {:?}",
                c.client.label(),
                c.container.label(),
                c.expected,
                c.measured
            )
        })
        .collect();
    assert!(
        mismatches.is_empty(),
        "Table 1 deviations:\n{}\n\n{}",
        mismatches.join("\n"),
        table.to_text()
    );
}

#[test]
fn table1_is_stable_across_seeds() {
    // The strategy classification is a structural property, not a lucky
    // seed: a different seed yields the same matrix.
    let (_, a) = table1_strategy_matrix(1);
    let (_, b) = table1_strategy_matrix(99);
    for (ca, cb) in a.iter().zip(&b) {
        assert_eq!(
            ca.measured,
            cb.measured,
            "{} / {} classification unstable across seeds",
            ca.client.label(),
            ca.container.label()
        );
    }
}
