//! Determinism of the parallel session executor: every figure/table driver
//! must produce identical output at any worker count, and batch results
//! must depend only on each session's identity — never on submission order
//! or scheduling.

use vstream::figures as f;
use vstream::prelude::*;
use vstream::report::FigureData;

fn csv_of(fig: &FigureData) -> String {
    fig.to_csv()
}

/// Serializes a representative slice of the figure suite at a given worker
/// count. Covers every seeding scheme the figure drivers use: identity
/// derivation (fig4/fig8), index offsets (fig9/fig2), shared roots
/// (table2), and pre-sampled shared-RNG parameters (ext-agg-pkt).
fn figure_suite(jobs: usize) -> Vec<String> {
    set_default_jobs(jobs);
    let mut out = Vec::new();
    let (fig4a, fig4b) = f::fig4_flash_steady_state(97, 3);
    out.push(csv_of(&fig4a));
    out.push(csv_of(&fig4b));
    let (fig8, corr) = f::fig8_bulk_rates(98, 6);
    out.push(csv_of(&fig8));
    out.push(format!("{corr:.12}"));
    out.push(csv_of(&f::fig9_ack_clock(99)));
    let (fig2a, fig2b) = f::fig2_short_onoff(100);
    out.push(csv_of(&fig2a));
    out.push(csv_of(&fig2b));
    let (table1, _) = f::table1_strategy_matrix(101);
    out.push(table1.to_csv());
    out.push(f::table2_strategy_comparison(102, 60).to_csv());
    out.push(f::ext_aggregate_packet_level(103, 6, 500.0).to_csv());
    out
}

#[test]
fn figure_output_is_identical_for_jobs_1_and_8() {
    let serial = figure_suite(1);
    let parallel = figure_suite(8);
    set_default_jobs(0); // restore the all-cores default for other tests
    assert_eq!(serial.len(), parallel.len());
    for (i, (a, b)) in serial.iter().zip(&parallel).enumerate() {
        assert_eq!(a, b, "artifact #{i} differs between --jobs 1 and --jobs 8");
    }
}

#[test]
fn batch_results_do_not_depend_on_submission_order() {
    let video = |id: u64, rate: u64| Video::new(id, rate, SimDuration::from_secs(2400));
    let specs: Vec<SessionSpec> = (0..6)
        .map(|i| {
            SessionSpec::new(
                Client::Firefox,
                Container::Flash,
                video(i, 800_000 + 100_000 * i),
                NetworkProfile::Research,
                0xD15C + i,
                SimDuration::from_secs(60),
            )
        })
        .collect();
    // A fixed permutation of the same specs.
    let perm = [4usize, 0, 5, 2, 1, 3];
    let permuted: Vec<SessionSpec> = perm.iter().map(|&i| specs[i]).collect();

    let digest = |out: &CellOutcome| {
        (
            out.trace.len(),
            out.trace.total_downloaded(),
            out.connections,
            out.player_stats().stalls,
        )
    };
    for jobs in [1, 3, 8] {
        let straight = run_many_jobs(&specs, jobs);
        let shuffled = run_many_jobs(&permuted, jobs);
        for (k, &i) in perm.iter().enumerate() {
            let a = straight[i].as_ref().expect("valid cell");
            let b = shuffled[k].as_ref().expect("valid cell");
            assert_eq!(
                digest(a),
                digest(b),
                "session {i} differs when submitted at position {k} (jobs = {jobs})"
            );
        }
    }
}

#[test]
fn map_many_agrees_with_serial_run() {
    let specs: Vec<SessionSpec> = (0..4)
        .map(|i| {
            SessionSpec::new(
                Client::Chrome,
                Container::Html5,
                Video::new(i, 1_200_000, SimDuration::from_secs(2400)),
                NetworkProfile::Home,
                0xABCD + i,
                SimDuration::from_secs(60),
            )
        })
        .collect();
    let parallel = map_many(&specs, |_, out| out.trace.total_downloaded());
    for (i, spec) in specs.iter().enumerate() {
        let serial = spec.run().map(|out| out.trace.total_downloaded());
        assert_eq!(parallel[i], serial, "session {i}");
    }
}
