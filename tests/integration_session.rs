//! End-to-end integration: full streaming sessions through the public API,
//! crossing every crate (workload → app → tcp → net → capture → analysis).

use vstream::prelude::*;

const CAPTURE: SimDuration = SimDuration::from_secs(180);

fn long_video(rate: u64) -> Video {
    Video::new(1, rate, SimDuration::from_secs(2400))
}

#[test]
fn flash_session_end_to_end() {
    let out = run_cell(
        Client::InternetExplorer,
        Container::Flash,
        long_video(1_000_000),
        NetworkProfile::Research,
        101,
        CAPTURE,
    )
    .unwrap();

    let cfg = AnalysisConfig::default();
    assert_eq!(classify(&out.trace, &cfg), Strategy::ShortCycles);

    let phases = SessionPhases::from_trace(&out.trace, &cfg);
    // ~40 s of playback buffered, k ~ 1.25.
    let playback = phases.buffered_playback_time(1e6);
    assert!((30.0..=50.0).contains(&playback), "buffered {playback:.0} s");
    let k = phases.accumulation_ratio(1e6).unwrap();
    assert!((1.05..=1.45).contains(&k), "k = {k:.2}");

    // Total download over 180 s ~ buffering + 140 s * 1.25 Mbps.
    let mb = out.trace.total_downloaded() as f64 / 1e6;
    assert!((20.0..=35.0).contains(&mb), "downloaded {mb:.1} MB");

    // The player saw smooth playback.
    assert_eq!(out.player_stats().stalls, 0);
}

#[test]
fn every_vantage_point_reproduces_flash_blocks() {
    // The 64 kB dominant block size holds on all four networks (Fig. 4a).
    for profile in NetworkProfile::ALL {
        let out = run_cell(
            Client::Firefox,
            Container::Flash,
            long_video(800_000),
            profile,
            103,
            CAPTURE,
        )
        .unwrap();
        let analysis =
            vstream_analysis::OnOffAnalysis::from_trace(&out.trace, &AnalysisConfig::default());
        let blocks = analysis.steady_state_block_sizes();
        assert!(!blocks.is_empty(), "{profile}: no steady state detected");
        let cdf = Cdf::new(blocks.iter().map(|&b| b as f64).collect());
        let median = cdf.median();
        assert!(
            (50_000.0..=90_000.0).contains(&median),
            "{profile}: median block {median:.0} B"
        );
    }
}

#[test]
fn lossy_network_shows_retransmissions_like_the_paper() {
    // §5.1.1: Residence median retransmission rate 1.02 %. Check the
    // simulated rate lands in the right regime (an order of magnitude, not
    // a point estimate — one session is one sample).
    let out = run_cell(
        Client::Firefox,
        Container::Html5, // bulk: lots of packets for a stable estimate
        Video::new(1, 2_000_000, SimDuration::from_secs(240)),
        NetworkProfile::Residence,
        107,
        CAPTURE,
    )
    .unwrap();
    let rate = out.trace.retransmission_rate();
    assert!(
        (0.003..=0.04).contains(&rate),
        "Residence retransmission rate {rate:.4} (paper: ~0.0102)"
    );

    let out_research = run_cell(
        Client::Firefox,
        Container::Html5,
        Video::new(1, 2_000_000, SimDuration::from_secs(240)),
        NetworkProfile::Research,
        107,
        CAPTURE,
    )
    .unwrap();
    assert!(
        out_research.trace.retransmission_rate() < rate,
        "Research must be cleaner than Residence"
    );
}

#[test]
fn underprovisioned_path_degenerates_to_bulk_like_transfer() {
    // §3: no OFF periods when the available bandwidth is at or below the
    // target rate — here a 6 Mbps HD stream into a 7.7 Mbps ADSL line with
    // k=1.25 target 7.5 Mbps ≈ the line rate.
    let out = run_cell(
        Client::Firefox,
        Container::Flash,
        long_video(6_000_000),
        NetworkProfile::Residence,
        109,
        SimDuration::from_secs(120),
    )
    .unwrap();
    let analysis =
        vstream_analysis::OnOffAnalysis::from_trace(&out.trace, &AnalysisConfig::default());
    // Loss-induced RTO gaps may appear, but no sustained cycle structure:
    // OFF time is a tiny fraction of the session.
    let off_total: f64 = analysis
        .off_durations()
        .iter()
        .map(|d| d.as_secs_f64())
        .sum();
    assert!(
        off_total < 10.0,
        "sustained OFF periods on a saturated path: {off_total:.1} s"
    );
}

#[test]
fn player_stalls_when_bandwidth_is_insufficient() {
    // A 9 Mbps HD video cannot stream over 7.7 Mbps ADSL: the player must
    // stall (accumulation ratio < 1, §3).
    let out = run_cell(
        Client::Firefox,
        Container::FlashHd,
        Video::new(1, 9_000_000, SimDuration::from_secs(300)),
        NetworkProfile::Residence,
        113,
        CAPTURE,
    )
    .unwrap();
    assert!(
        out.player_stats().stalls > 0,
        "player should stall on an underprovisioned path"
    );
}

#[test]
fn netflix_multibitrate_prefetch_is_visible() {
    let out = run_cell(
        Client::Firefox,
        Container::Silverlight,
        long_video(3_000_000),
        NetworkProfile::Academic,
        127,
        CAPTURE,
    )
    .unwrap();
    // Many connections: probes + striped buffering + per-block connections.
    assert!(out.connections > 10, "connections = {}", out.connections);
    // The trace shows all of them.
    assert_eq!(out.trace.connections().len(), out.connections);
}

#[test]
fn interruption_reduces_download() {
    let video = long_video(1_500_000);
    let full = run_cell(
        Client::Chrome,
        Container::Html5,
        video,
        NetworkProfile::Research,
        131,
        CAPTURE,
    )
    .unwrap();
    let cut = vstream::session::run_cell_interrupted(
        Client::Chrome,
        Container::Html5,
        video,
        NetworkProfile::Research,
        131,
        CAPTURE,
        SimDuration::from_secs(30),
    )
    .unwrap();
    assert!(cut.trace.total_downloaded() < full.trace.total_downloaded());
    assert!(cut.trace.total_downloaded() > 0);
}
