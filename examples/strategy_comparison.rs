//! Streams the same video through every Table 1 cell and prints the
//! strategy matrix next to the paper's — the headline result of the paper
//! regenerated in one command.
//!
//! Run with: `cargo run --release --example strategy_comparison`

use vstream::figures::table1_strategy_matrix;
use vstream::prelude::*;
use vstream_workload::table1_expected;

fn main() {
    println!("Running every application x container combination (this streams");
    println!("16 sessions of 180 simulated seconds each)...\n");

    let (table, cells) = table1_strategy_matrix(2026);
    println!("{}", table.to_text());

    println!("Paper's Table 1 for comparison:");
    for client in Client::ALL {
        let row: Vec<String> = Container::ALL
            .iter()
            .map(|&container| {
                table1_expected(client, container)
                    .map(|s| s.table_label().to_string())
                    .unwrap_or_else(|| "-".into())
            })
            .collect();
        println!("  {:<18} {}", client.label(), row.join("  "));
    }

    let matched = cells.iter().filter(|c| c.matches()).count();
    println!("\n{matched}/{} cells match the paper.", cells.len());

    // The deeper point of §5.3: a population shift between containers or
    // applications changes the traffic mix. Show the per-strategy traffic
    // profile for one video.
    println!("\nWhy it matters — same video, different traffic shapes:");
    let video = Video::new(0, 1_200_000, SimDuration::from_secs(1200));
    for (name, client, container) in [
        ("Flash (short cycles)  ", Client::Firefox, Container::Flash),
        ("Firefox HTML5 (bulk)  ", Client::Firefox, Container::Html5),
        ("Chrome HTML5 (long)   ", Client::Chrome, Container::Html5),
    ] {
        let out = run_cell(
            client,
            container,
            video,
            NetworkProfile::Research,
            7,
            SimDuration::from_secs(120),
        )
        .unwrap();
        println!(
            "  {name} downloaded {:>6.1} MB in 120 s across {} connection(s)",
            out.trace.total_downloaded() as f64 / 1e6,
            out.connections
        );
    }
}
