//! Streams a Netflix session, inspects the capture like a measurement
//! researcher would — per-connection summaries, throughput timeline, cycle
//! structure — and exports it as a pcap file for Wireshark.
//!
//! Run with: `cargo run --release --example trace_inspector`

use std::fs::File;

use vstream::prelude::*;
use vstream_analysis::OnOffAnalysis;
use vstream_capture::pcap::write_pcap;

fn main() {
    // A Netflix PC session on the Academic network (the paper's §5.2
    // vantage point for Netflix).
    let video = Video::new(0, 3_000_000, SimDuration::from_secs(2400));
    let out = run_cell(
        Client::Firefox,
        Container::Silverlight,
        video,
        NetworkProfile::Academic,
        7,
        SimDuration::from_secs(120),
    )
    .unwrap();
    let trace = &out.trace;

    println!("=== capture summary ===");
    println!(
        "{} packets, {:.1} MB unique / {:.1} MB raw, retx rate {:.2}%",
        trace.len(),
        trace.total_downloaded() as f64 / 1e6,
        trace.total_raw_downloaded() as f64 / 1e6,
        trace.retransmission_rate() * 100.0
    );

    println!("\n=== per-connection view (the paper's §5.2.2 observation: many connections) ===");
    let summaries = trace.connection_summaries();
    println!("{} TCP connections:", summaries.len());
    for s in summaries.iter().take(12) {
        println!(
            "  conn {:>2}: {:>8.2} s -> {:>8.2} s, {:>8.2} MB",
            s.conn,
            s.first_seen.as_secs_f64(),
            s.last_seen.as_secs_f64(),
            s.unique_bytes as f64 / 1e6
        );
    }
    if summaries.len() > 12 {
        println!("  ... and {} more", summaries.len() - 12);
    }

    println!("\n=== throughput timeline (2 s bins) ===");
    for (t, bps) in trace.throughput_timeline(SimDuration::from_secs(2)).iter().take(20) {
        let bars = (bps / 2e6) as usize;
        println!("  {:>6.1} s | {:<40} {:.1} Mbps", t.as_secs_f64(), "#".repeat(bars.min(40)), bps / 1e6);
    }

    println!("\n=== cycle structure ===");
    let analysis = OnOffAnalysis::from_trace(trace, &AnalysisConfig::default());
    println!(
        "{} ON periods, {} OFF periods; strategy: {}",
        analysis.cycles.len(),
        analysis.off_periods.len(),
        classify(trace, &AnalysisConfig::default())
    );

    let path = std::env::temp_dir().join("netflix_session.pcap");
    write_pcap(trace, File::create(&path).expect("create pcap")).expect("write pcap");
    println!("\nwrote {} ({} packets) — open it in Wireshark", path.display(), trace.len());
}
