//! Capacity planning with the §6 model: how much link capacity does a video
//! streaming population need, and does the streaming strategy matter?
//!
//! Run with: `cargo run --release --example capacity_planning`

use vstream_model::{provisioned_capacity, FluidSim, FluidStrategy, PopulationModel};

fn main() {
    // An ISP aggregation link serving a neighbourhood: two new streaming
    // sessions per second, 2011-era encoding rates.
    let population = PopulationModel {
        lambda: 2.0,
        encoding_bps: (0.5e6, 1.5e6),
        duration_secs: (120.0, 360.0),
        bandwidth_bps: (5e6, 15e6),
    };

    let mean = population.expected_mean_bps();
    let var = population.expected_variance();
    println!("Closed form (Eqs. 3/4):");
    println!("  E[R]    = {:.1} Mbps", mean / 1e6);
    println!("  sqrt(V) = {:.1} Mbps", var.sqrt() / 1e6);
    for alpha in [1.0, 2.0, 3.0] {
        println!(
            "  capacity at alpha={alpha}: {:.1} Mbps",
            provisioned_capacity(mean, var, alpha) / 1e6
        );
    }

    println!("\nMonte-Carlo validation (and the strategy-independence result):");
    for (name, strategy) in [
        ("no ON-OFF (bulk)", FluidStrategy::Bulk),
        ("short ON-OFF    ", FluidStrategy::short_cycles()),
        ("long ON-OFF     ", FluidStrategy::long_cycles()),
    ] {
        let sim = FluidSim::new(population.clone(), strategy);
        let (m, v) = sim.moments(1, 4000.0, 0.5);
        println!(
            "  {name}: E[R] = {:.1} Mbps, sqrt(V) = {:.1} Mbps",
            m / 1e6,
            v.sqrt() / 1e6
        );
    }
    println!("\nThe moments match the closed form for every strategy: a provider");
    println!("can pick a streaming strategy for server-side goals without");
    println!("re-dimensioning the network (§6.1, conclusion 2).");

    // §6.1 conclusion 3: higher encoding rates smooth the aggregate.
    println!("\nSmoothing effect of higher encoding rates:");
    for e in [0.5e6, 1.0e6, 2.0e6, 4.0e6] {
        let m = 2.0 * e * 240.0;
        let v: f64 = 2.0 * e * 240.0 * 10e6;
        println!(
            "  E[e] = {:.1} Mbps -> coefficient of variation {:.3}",
            e / 1e6,
            v.sqrt() / m
        );
    }
}
