//! Quickstart: stream one video, watch the three phases appear, classify
//! the strategy — the whole pipeline of the paper in ~40 lines.
//!
//! Run with: `cargo run --release --example quickstart`

use vstream::prelude::*;

fn main() {
    // A ten-minute, 1 Mbps video — the paper's default-resolution YouTube
    // case — streamed over Flash from the Research network vantage point.
    let video = Video::new(0, 1_000_000, SimDuration::from_secs(600));
    let outcome = run_cell(
        Client::Firefox,
        Container::Flash,
        video,
        NetworkProfile::Research,
        42,
        SimDuration::from_secs(120),
    )
    .expect("a browser playing Flash is a valid Table 1 cell");

    // The capture is what tcpdump would have recorded on the viewing
    // machine.
    let trace = &outcome.trace;
    println!(
        "captured {} packets, {:.1} MB downloaded over {:.0} s",
        trace.len(),
        trace.total_downloaded() as f64 / 1e6,
        trace.duration().as_secs_f64()
    );

    // Decompose into buffering and steady-state phases (§4).
    let cfg = AnalysisConfig::default();
    let phases = SessionPhases::from_trace(trace, &cfg);
    println!(
        "buffering phase: {:.1} MB = {:.0} s of playback",
        phases.buffering_bytes as f64 / 1e6,
        phases.buffered_playback_time(video.encoding_bps as f64)
    );
    if let Some(k) = phases.accumulation_ratio(video.encoding_bps as f64) {
        println!("accumulation ratio k = {k:.2} (the paper measures 1.25)");
    }

    // Classify the streaming strategy (§3).
    let strategy = classify(trace, &cfg);
    println!("strategy: {strategy}");

    // And the player's side of the story.
    let stats = outcome.player_stats();
    println!(
        "player: started after {:?}, {} stalls",
        stats.startup_delay, stats.stalls
    );
}
