//! How many bytes are wasted when viewers lose interest? (§6.2)
//!
//! Most streaming sessions are abandoned early — the paper cites campus
//! measurements where 60 % of videos are watched for less than a fifth of
//! their duration. This example measures the downloaded-but-unwatched bytes
//! per strategy, both in packet-level simulation and with the Eq. (8)/(9)
//! closed forms.
//!
//! Run with: `cargo run --release --example interruption_waste`

use vstream::prelude::*;
use vstream::session::run_cell_interrupted;
use vstream_model::{full_download_duration_threshold, unused_bytes};

fn main() {
    // A six-minute 1.2 Mbps video abandoned 20 % of the way in (72 s).
    let video = Video::new(0, 1_200_000, SimDuration::from_secs(360));
    let watch = SimDuration::from_secs(72);
    let watched_bytes = video.playback_bytes(72.0);

    println!("Packet-level simulation: viewer quits after 72 s (beta = 0.2)\n");
    for (name, client, container) in [
        ("No ON-OFF (Firefox HTML5)", Client::Firefox, Container::Html5),
        ("Long ON-OFF (Chrome)     ", Client::Chrome, Container::Html5),
        ("Short ON-OFF (Flash)     ", Client::Firefox, Container::Flash),
    ] {
        let out = run_cell_interrupted(
            client,
            container,
            video,
            NetworkProfile::Research,
            11,
            SimDuration::from_secs(180),
            watch,
        )
        .unwrap();
        let downloaded = out.trace.total_downloaded();
        let wasted = downloaded.saturating_sub(watched_bytes);
        println!(
            "  {name}: downloaded {:>5.1} MB, wasted {:>5.1} MB ({:.0}%)",
            downloaded as f64 / 1e6,
            wasted as f64 / 1e6,
            100.0 * wasted as f64 / downloaded as f64
        );
    }

    println!("\nClosed form (Eq. 8): unused bytes for the same scenario");
    for (name, buffer_secs, k) in [
        ("No ON-OFF ", 1e9, 1.0), // bulk: 'infinite' buffering phase
        ("Long cycles", 80.0, 1.25),
        ("Short cycles", 40.0, 1.25),
    ] {
        let waste = unused_bytes(1.2e6, 360.0, buffer_secs, k, 0.2);
        println!("  {name}: {:.1} MB", waste / 1e6);
    }

    // Eq. (7): which videos are fully downloaded despite the interrupt?
    let threshold = full_download_duration_threshold(40.0, 1.25, 0.2);
    println!(
        "\nEq. (7): with 40 s buffering and k = 1.25, every video shorter than \
         {threshold:.1} s\nis fully downloaded even though the viewer watches only 20% of it."
    );
}
